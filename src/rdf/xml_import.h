#ifndef MDV_RDF_XML_IMPORT_H_
#define MDV_RDF_XML_IMPORT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/document.h"
#include "rdf/schema.h"

namespace mdv::rdf {

/// Imports *generic* XML (not RDF/XML) into the RDF data model — the
/// direction the paper's conclusion announces ("the utilization of XML
/// as data format", §6). The mapping:
///
///  - every element with element children becomes a resource whose class
///    is the element's local name;
///  - attributes and text-only child elements become literal properties;
///  - element children that are themselves resources become reference
///    properties named after the child element's local name;
///  - local ids are taken from an `id` attribute when present, otherwise
///    synthesized as `<element>_<n>` in document order;
///  - the root element is imported like any other resource.
///
/// The result registers/filters through MDV exactly like native RDF.
Result<RdfDocument> ImportGenericXml(std::string_view xml,
                                     const std::string& document_uri);

/// Extends `schema` so that `document` validates: missing classes are
/// added; missing properties are declared (reference properties weak,
/// repeated properties set-valued). Existing declarations are kept;
/// SchemaViolation if an existing declaration conflicts (e.g. a literal
/// property now holding references).
Status ExtendSchemaForDocument(const RdfDocument& document,
                               RdfSchema* schema);

}  // namespace mdv::rdf

#endif  // MDV_RDF_XML_IMPORT_H_
