#include "rdf/document.h"

#include <algorithm>

namespace mdv::rdf {

size_t Resource::RemoveProperties(const std::string& name) {
  size_t before = properties_.size();
  properties_.erase(
      std::remove_if(properties_.begin(), properties_.end(),
                     [&](const Property& p) { return p.name == name; }),
      properties_.end());
  return before - properties_.size();
}

const PropertyValue* Resource::FindProperty(const std::string& name) const {
  for (const Property& p : properties_) {
    if (p.name == name) return &p.value;
  }
  return nullptr;
}

std::vector<PropertyValue> Resource::FindProperties(
    const std::string& name) const {
  std::vector<PropertyValue> out;
  for (const Property& p : properties_) {
    if (p.name == name) out.push_back(p.value);
  }
  return out;
}

void Resource::SetProperty(const std::string& name, PropertyValue value) {
  for (Property& p : properties_) {
    if (p.name == name) {
      p.value = std::move(value);
      return;
    }
  }
  properties_.push_back({name, std::move(value)});
}

bool Resource::ContentEquals(const Resource& other) const {
  if (class_name_ != other.class_name_) return false;
  if (properties_.size() != other.properties_.size()) return false;
  // Order-insensitive multiset comparison via sorted copies.
  auto key = [](const Property& p) {
    return p.name + "\x01" + (p.value.is_literal() ? "L" : "R") + "\x01" +
           p.value.text();
  };
  std::vector<std::string> a, b;
  a.reserve(properties_.size());
  b.reserve(other.properties_.size());
  for (const Property& p : properties_) a.push_back(key(p));
  for (const Property& p : other.properties_) b.push_back(key(p));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

Status RdfDocument::AddResource(Resource resource) {
  const std::string& id = resource.local_id();
  if (id.empty()) {
    return Status::InvalidArgument("resource without rdf:ID in document " +
                                   uri_);
  }
  if (resources_.count(id) != 0) {
    return Status::AlreadyExists("resource " + id + " in document " + uri_);
  }
  resources_.emplace(id, std::move(resource));
  return Status::OK();
}

Status RdfDocument::RemoveResource(const std::string& local_id) {
  if (resources_.erase(local_id) == 0) {
    return Status::NotFound("resource " + local_id + " in document " + uri_);
  }
  return Status::OK();
}

const Resource* RdfDocument::FindResource(const std::string& local_id) const {
  auto it = resources_.find(local_id);
  return it == resources_.end() ? nullptr : &it->second;
}

Resource* RdfDocument::FindMutableResource(const std::string& local_id) {
  auto it = resources_.find(local_id);
  return it == resources_.end() ? nullptr : &it->second;
}

std::vector<const Resource*> RdfDocument::resources() const {
  std::vector<const Resource*> out;
  out.reserve(resources_.size());
  for (const auto& [id, res] : resources_) out.push_back(&res);
  return out;
}

Statements RdfDocument::ToStatements() const {
  Statements out;
  for (const auto& [id, res] : resources_) {
    std::string uri_ref = UriReferenceOf(id);
    // The synthetic rdf#subject statement lets OID rules register a single
    // resource by its URI reference (paper §3.2, Figure 4).
    out.push_back(Statement{uri_ref, res.class_name(), kRdfSubjectProperty,
                            PropertyValue::ResourceRef(uri_ref)});
    for (const Property& p : res.properties()) {
      out.push_back(Statement{uri_ref, res.class_name(), p.name, p.value});
    }
  }
  return out;
}

}  // namespace mdv::rdf
