#include "rdf/schema.h"

#include <set>

namespace mdv::rdf {

Status RdfSchema::AddClass(ClassDef class_def) {
  const std::string& name = class_def.name;
  if (name.empty()) {
    return Status::InvalidArgument("class name must not be empty");
  }
  if (classes_.count(name) != 0) {
    return Status::AlreadyExists("class " + name);
  }
  classes_.emplace(name, std::move(class_def));
  return Status::OK();
}

Status RdfSchema::ReplaceClass(ClassDef class_def) {
  if (class_def.name.empty()) {
    return Status::InvalidArgument("class name must not be empty");
  }
  classes_.insert_or_assign(class_def.name, std::move(class_def));
  return Status::OK();
}

bool RdfSchema::HasClass(const std::string& name) const {
  return classes_.count(name) != 0;
}

const ClassDef* RdfSchema::FindClass(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

const PropertyDef* RdfSchema::FindProperty(
    const std::string& class_name, const std::string& property_name) const {
  const ClassDef* cls = FindClass(class_name);
  if (cls == nullptr) return nullptr;
  auto it = cls->properties.find(property_name);
  return it == cls->properties.end() ? nullptr : &it->second;
}

std::vector<std::string> RdfSchema::ClassNames() const {
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, def] : classes_) names.push_back(name);
  return names;
}

Result<ResolvedPath> RdfSchema::ResolvePath(
    const std::string& class_name,
    const std::vector<std::string>& path) const {
  if (path.empty()) {
    return Status::InvalidArgument("empty property path on class " +
                                   class_name);
  }
  ResolvedPath resolved;
  std::string current_class = class_name;
  for (size_t i = 0; i < path.size(); ++i) {
    if (!HasClass(current_class)) {
      return Status::NotFound("class " + current_class + " (step " +
                              std::to_string(i) + " of path)");
    }
    const PropertyDef* prop = FindProperty(current_class, path[i]);
    if (prop == nullptr) {
      return Status::NotFound("property " + path[i] + " on class " +
                              current_class);
    }
    resolved.classes.push_back(current_class);
    resolved.properties.push_back(*prop);
    bool last = (i + 1 == path.size());
    if (!last) {
      if (prop->kind != PropertyKind::kReference) {
        return Status::InvalidArgument(
            "path steps through literal property " + current_class + "." +
            path[i]);
      }
      current_class = prop->referenced_class;
    }
  }
  return resolved;
}

Status RdfSchema::ValidateDocument(const RdfDocument& document) const {
  for (const Resource* res : document.resources()) {
    const ClassDef* cls = FindClass(res->class_name());
    if (cls == nullptr) {
      return Status::SchemaViolation("unknown class " + res->class_name() +
                                     " for resource " + res->local_id());
    }
    std::set<std::string> seen;
    for (const Property& p : res->properties()) {
      auto it = cls->properties.find(p.name);
      if (it == cls->properties.end()) {
        return Status::SchemaViolation("undeclared property " +
                                       res->class_name() + "." + p.name +
                                       " on resource " + res->local_id());
      }
      const PropertyDef& def = it->second;
      if (!def.set_valued && !seen.insert(p.name).second) {
        return Status::SchemaViolation(
            "property " + res->class_name() + "." + p.name +
            " occurs multiple times but is not set-valued (resource " +
            res->local_id() + ")");
      }
      if (def.kind == PropertyKind::kReference &&
          !p.value.is_resource_ref()) {
        return Status::SchemaViolation("reference property " +
                                       res->class_name() + "." + p.name +
                                       " holds a literal (resource " +
                                       res->local_id() + ")");
      }
      if (def.kind == PropertyKind::kLiteral && !p.value.is_literal()) {
        return Status::SchemaViolation("literal property " +
                                       res->class_name() + "." + p.name +
                                       " holds a reference (resource " +
                                       res->local_id() + ")");
      }
    }
  }
  return Status::OK();
}

ClassBuilder& ClassBuilder::Literal(const std::string& property,
                                    bool set_valued) {
  def_.properties[property] =
      PropertyDef{property, PropertyKind::kLiteral, "", RefStrength::kWeak,
                  set_valued};
  return *this;
}

ClassBuilder& ClassBuilder::StrongRef(const std::string& property,
                                      const std::string& target_class,
                                      bool set_valued) {
  def_.properties[property] =
      PropertyDef{property, PropertyKind::kReference, target_class,
                  RefStrength::kStrong, set_valued};
  return *this;
}

ClassBuilder& ClassBuilder::WeakRef(const std::string& property,
                                    const std::string& target_class,
                                    bool set_valued) {
  def_.properties[property] =
      PropertyDef{property, PropertyKind::kReference, target_class,
                  RefStrength::kWeak, set_valued};
  return *this;
}

RdfSchema MakeObjectGlobeSchema() {
  RdfSchema schema;
  Status st = schema.AddClass(ClassBuilder("ServerInformation")
                                  .Literal("memory")
                                  .Literal("cpu")
                                  .Build());
  st = schema.AddClass(ClassBuilder("CycleProvider")
                           .Literal("serverHost")
                           .Literal("serverPort")
                           .Literal("synthValue")
                           .StrongRef("serverInformation", "ServerInformation")
                           .Build());
  (void)st;  // Fresh schema; AddClass cannot fail here.
  return schema;
}

}  // namespace mdv::rdf
