#include "rules/lint.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

namespace mdv::rules {

namespace {

using rdbms::CompareOp;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::optional<double> ParseNumber(const std::string& text) {
  if (text.empty()) return std::nullopt;
  double out = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return out;
}

std::string NumText(double v) {
  // Render like Value::ToString does for doubles.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Accumulated constant constraints on one (variable, path).
struct Constraints {
  std::string display;  ///< `v.path` for diagnostics.

  // Ordered bounds, tightened predicate by predicate.
  bool has_lower = false;
  double lower = -kInf;
  bool lower_open = false;
  bool has_upper = false;
  double upper = kInf;
  bool upper_open = false;

  std::optional<double> eq_num;
  std::optional<std::string> eq_str;
  std::vector<double> ne_num;
  std::vector<std::string> ne_str;
  std::vector<std::string> contains;

  /// False when the path traverses a set-valued property (or uses `?`):
  /// predicates then match existentially per element, so two conjuncts
  /// need not hold on the same element and cross-predicate reasoning is
  /// unsound. Single-predicate facts still apply.
  bool conjunctive = true;
};

/// The numeric point a constraint set pins the value to, if any: an
/// explicit numeric equality, or a string equality whose text parses as
/// a number (EQS '5' admits only the text "5", which compares as 5).
std::optional<double> PinnedNumber(const Constraints& c) {
  if (c.eq_num) return c.eq_num;
  if (c.eq_str) return ParseNumber(*c.eq_str);
  return std::nullopt;
}

bool BelowLower(const Constraints& c, double v) {
  return c.has_lower && (v < c.lower || (v == c.lower && c.lower_open));
}

bool AboveUpper(const Constraints& c, double v) {
  return c.has_upper && (v > c.upper || (v == c.upper && c.upper_open));
}

bool OutsideInterval(const Constraints& c, double v) {
  return BelowLower(c, v) || AboveUpper(c, v);
}

std::string BoundText(double bound, bool open, bool is_lower) {
  return std::string(is_lower ? (open ? "> " : ">= ") : (open ? "< " : "<= ")) +
         NumText(bound);
}

/// Key identifying one path of one variable inside a rule. For
/// single-variable rules the variable is canonicalized to `$`, so the
/// same constraint in two rules gets the same key regardless of what
/// each rule named its variable (subsumption compares keys across
/// rules); multi-variable rules keep the variable name to keep the
/// per-variable constraint sets apart.
std::string PathKeyOf(const PathExpr& path, bool single_variable) {
  std::string key = single_variable ? std::string("$") : path.variable;
  for (const PathStep& step : path.steps) {
    key += '.';
    key += step.property;
    if (step.any) key += '?';
  }
  return key;
}

/// True when every step of `path` is single-valued (and `?`-free), so a
/// conjunction of predicates over it constrains one value.
bool PathIsConjunctive(const PathExpr& path, const AnalyzedRule& rule,
                       const rdf::RdfSchema& schema) {
  if (path.steps.empty()) return true;  // The resource's own URI.
  auto it = rule.variable_class.find(path.variable);
  if (it == rule.variable_class.end()) return false;
  std::vector<std::string> names;
  names.reserve(path.steps.size());
  for (const PathStep& step : path.steps) {
    if (step.any) return false;
    names.push_back(step.property);
  }
  Result<rdf::ResolvedPath> resolved = schema.ResolvePath(it->second, names);
  if (!resolved.ok()) return false;  // Analyzer rejects these anyway.
  for (const rdf::PropertyDef& prop : resolved->properties) {
    if (prop.set_valued) return false;
  }
  return true;
}

/// A predicate in canonical `path op constant` form.
struct ConstantPredicate {
  std::string key;
  const PathExpr* path = nullptr;
  CompareOp op = CompareOp::kEq;
  const Operand* constant = nullptr;
  std::string text;  ///< Re-serialized predicate, for diagnostics.
};

struct LintContext {
  std::vector<LintDiagnostic>* out;
  bool* unsatisfiable;
};

void Emit(const LintContext& ctx, LintCode code, LintSeverity severity,
          std::string detail) {
  if (severity == LintSeverity::kError) *ctx.unsatisfiable = true;
  ctx.out->push_back(
      LintDiagnostic{code, severity, "", "", std::move(detail)});
}

void Unsat(const LintContext& ctx, std::string detail) {
  Emit(ctx, LintCode::kUnsatisfiable, LintSeverity::kError, std::move(detail));
}

/// Folds one constant predicate into `c`, reporting contradictions with
/// the constraints accumulated so far.
void FoldPredicate(const LintContext& ctx, Constraints* c,
                   const ConstantPredicate& pred) {
  const Operand& rhs = *pred.constant;
  const bool is_number = rhs.kind == Operand::Kind::kNumber;
  switch (pred.op) {
    case CompareOp::kLt:
    case CompareOp::kLe: {
      const bool open = pred.op == CompareOp::kLt;
      const double bound = rhs.number;
      if (!c->has_upper || bound < c->upper ||
          (bound == c->upper && open && !c->upper_open)) {
        c->has_upper = true;
        c->upper = bound;
        c->upper_open = open;
      }
      break;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      const bool open = pred.op == CompareOp::kGt;
      const double bound = rhs.number;
      if (!c->has_lower || bound > c->lower ||
          (bound == c->lower && open && !c->lower_open)) {
        c->has_lower = true;
        c->lower = bound;
        c->lower_open = open;
      }
      break;
    }
    case CompareOp::kEq:
      if (is_number) {
        if (c->eq_num && *c->eq_num != rhs.number) {
          Unsat(ctx, c->display + " cannot equal both " + NumText(*c->eq_num) +
                         " and " + NumText(rhs.number));
          return;
        }
        c->eq_num = rhs.number;
      } else {
        if (c->eq_str && *c->eq_str != rhs.text) {
          Unsat(ctx, c->display + " cannot equal both '" + *c->eq_str +
                         "' and '" + rhs.text + "'");
          return;
        }
        c->eq_str = rhs.text;
      }
      break;
    case CompareOp::kNe:
      if (is_number) {
        c->ne_num.push_back(rhs.number);
      } else {
        c->ne_str.push_back(rhs.text);
      }
      break;
    case CompareOp::kContains:
      c->contains.push_back(rhs.text);
      if (rhs.text.empty()) {
        Emit(ctx, LintCode::kRedundantPredicate, LintSeverity::kWarning,
             "contains '' on " + c->display + " is always true");
      }
      break;
  }
}

/// Cross-predicate satisfiability of one path's accumulated constraints.
void CheckConstraints(const LintContext& ctx, const Constraints& c) {
  // Contradictory bounds: empty numeric interval.
  if (c.has_lower && c.has_upper &&
      (c.lower > c.upper ||
       (c.lower == c.upper && (c.lower_open || c.upper_open)))) {
    Unsat(ctx, c.display + " has contradictory bounds " +
                   BoundText(c.lower, c.lower_open, /*is_lower=*/true) +
                   " and " +
                   BoundText(c.upper, c.upper_open, /*is_lower=*/false));
    return;
  }

  // Numeric and string equality must agree on the admitted text.
  if (c.eq_num && c.eq_str) {
    std::optional<double> parsed = ParseNumber(*c.eq_str);
    if (!parsed || *parsed != *c.eq_num) {
      Unsat(ctx, c.display + " cannot equal both " + NumText(*c.eq_num) +
                     " and '" + *c.eq_str + "'");
      return;
    }
  }

  // An equality pinning the value to a number outside the interval.
  if (std::optional<double> pin = PinnedNumber(c)) {
    if (OutsideInterval(c, *pin)) {
      std::string bound =
          BelowLower(c, *pin)
              ? BoundText(c.lower, c.lower_open, /*is_lower=*/true)
              : BoundText(c.upper, c.upper_open, /*is_lower=*/false);
      Unsat(ctx, c.display + " = " + NumText(*pin) +
                     " contradicts the bound " + bound);
      return;
    }
    for (double v : c.ne_num) {
      if (v == *pin) {
        Unsat(ctx, c.display + " = " + NumText(*pin) + " contradicts != " +
                       NumText(v));
        return;
      }
    }
  } else if (c.eq_str && (c.has_lower || c.has_upper)) {
    // Ordered operators never match non-numeric text (§3.3.4).
    Unsat(ctx, c.display + " = '" + *c.eq_str +
                   "' is not numeric but an ordered bound requires a number");
    return;
  }

  if (c.eq_str) {
    for (const std::string& s : c.ne_str) {
      if (s == *c.eq_str) {
        Unsat(ctx,
              c.display + " = '" + s + "' contradicts != '" + s + "'");
        return;
      }
    }
    // A string equality fixes the exact text; `contains` must hold on it.
    for (const std::string& sub : c.contains) {
      if (!sub.empty() && c.eq_str->find(sub) == std::string::npos) {
        Unsat(ctx, c.display + " = '" + *c.eq_str + "' cannot contain '" +
                       sub + "'");
        return;
      }
    }
  }

  // Degenerate interval [a, a] with a excluded.
  if (c.has_lower && c.has_upper && c.lower == c.upper && !c.lower_open &&
      !c.upper_open) {
    for (double v : c.ne_num) {
      if (v == c.lower) {
        Unsat(ctx, c.display + " is pinned to " + NumText(v) +
                       " by its bounds but excluded by != " + NumText(v));
        return;
      }
    }
  }
}

/// Canonical view of one rule for satisfiability and subsumption:
/// constant constraints per path, plus the facts needed to decide
/// whether the rule is comparable to others.
struct RuleSummary {
  std::map<std::string, Constraints> by_path;
  /// True when the rule is a single-variable, constant-constraint rule
  /// over a schema class — the shape pairwise comparison understands.
  bool comparable = false;
  std::string register_class;
};

RuleSummary Summarize(const AnalyzedRule& rule, const rdf::RdfSchema& schema,
                      const LintContext& ctx) {
  RuleSummary summary;
  std::set<std::string> seen_texts;
  const bool single_variable = rule.ast.search.size() == 1;
  summary.comparable = single_variable;
  for (const auto& [var, is_rule_ext] : rule.variable_is_rule_extension) {
    if (is_rule_ext) summary.comparable = false;
  }
  auto reg = rule.variable_class.find(rule.ast.register_variable);
  if (reg != rule.variable_class.end()) summary.register_class = reg->second;

  for (const PredicateExpr& pred : rule.ast.where) {
    // Canonicalize to path-op-constant; constants always on the right.
    ConstantPredicate cp;
    if (pred.lhs.is_path() && pred.rhs.is_constant()) {
      cp = ConstantPredicate{PathKeyOf(pred.lhs.path, single_variable),
                             &pred.lhs.path, pred.op, &pred.rhs,
                             pred.ToString()};
    } else if (pred.rhs.is_path() && pred.lhs.is_constant()) {
      cp = ConstantPredicate{PathKeyOf(pred.rhs.path, single_variable),
                             &pred.rhs.path, rdbms::FlipCompareOp(pred.op),
                             &pred.lhs, pred.ToString()};
    } else if (pred.lhs.is_path() && pred.rhs.is_path()) {
      summary.comparable = false;  // Join predicates are not compared.
      // Self-comparison: `v.p op v.p` over a single-valued path.
      if (PathKeyOf(pred.lhs.path, single_variable) ==
              PathKeyOf(pred.rhs.path, single_variable) &&
          PathIsConjunctive(pred.lhs.path, rule, schema)) {
        if (pred.op == CompareOp::kLt || pred.op == CompareOp::kGt ||
            pred.op == CompareOp::kNe) {
          Unsat(ctx, pred.ToString() + " compares a single-valued path " +
                         "against itself and can never hold");
        } else {
          Emit(ctx, LintCode::kRedundantPredicate, LintSeverity::kWarning,
               pred.ToString() + " compares a path against itself and is "
                                 "always true");
        }
      }
      continue;
    } else {
      continue;  // Constant-only; the analyzer rejects these.
    }

    if (!seen_texts.insert(cp.text).second) {
      Emit(ctx, LintCode::kRedundantPredicate, LintSeverity::kWarning,
           "duplicate predicate " + cp.text);
      continue;  // Fold it only once.
    }

    auto [it, inserted] = summary.by_path.emplace(cp.key, Constraints{});
    Constraints& c = it->second;
    if (inserted) {
      c.display = cp.path->IsBareVariable() ? cp.path->variable
                                            : cp.path->ToString();
      c.conjunctive = PathIsConjunctive(*cp.path, rule, schema);
    }
    if (c.conjunctive) {
      FoldPredicate(ctx, &c, cp);
    }
  }
  return summary;
}

// ---- Subsumption over canonical summaries. ------------------------------

bool LowerImplies(const Constraints& a, const Constraints& b) {
  if (!b.has_lower) return true;
  if (!a.has_lower) return false;
  return a.lower > b.lower ||
         (a.lower == b.lower && (a.lower_open || !b.lower_open));
}

bool UpperImplies(const Constraints& a, const Constraints& b) {
  if (!b.has_upper) return true;
  if (!a.has_upper) return false;
  return a.upper < b.upper ||
         (a.upper == b.upper && (a.upper_open || !b.upper_open));
}

/// True when any value admitted by `a` also satisfies every constraint
/// of `b` (one path key). Conservative: false on anything unprovable.
bool KeyImplies(const Constraints& a, const Constraints& b) {
  std::optional<double> a_pin = PinnedNumber(a);
  const bool a_nonnumeric_text = a.eq_str && !ParseNumber(*a.eq_str);
  // Ordered operators only ever match numeric text, so active bounds on
  // `a` guarantee the value parses as a number.
  const bool a_numeric_only = a_pin || a.has_lower || a.has_upper;

  if (b.eq_num) {
    if (!a_pin || *a_pin != *b.eq_num) return false;
  }
  if (b.eq_str) {
    if (!a.eq_str || *a.eq_str != *b.eq_str) return false;
  }
  if (b.has_lower || b.has_upper) {
    if (a_pin) {
      if (OutsideInterval(b, *a_pin)) return false;
    } else if (a_nonnumeric_text) {
      return false;  // a admits only non-numeric text; bounds never match.
    } else {
      if (!LowerImplies(a, b) || !UpperImplies(a, b)) return false;
    }
  }
  for (double v : b.ne_num) {
    bool excluded = false;
    if (a_pin) {
      excluded = *a_pin != v;
    } else if (a_nonnumeric_text) {
      excluded = true;  // Non-numeric text compares as a string != '<num>'.
    } else if (OutsideInterval(a, v)) {
      excluded = true;
    } else {
      for (double w : a.ne_num) excluded = excluded || w == v;
    }
    if (!excluded) return false;
  }
  for (const std::string& s : b.ne_str) {
    std::optional<double> s_num = ParseNumber(s);
    bool excluded = false;
    if (s_num) {
      // != '<numeric text>' compares numerically against numeric values.
      if (a_pin) {
        excluded = *a_pin != *s_num;
      } else if (a.eq_str) {
        excluded = *a.eq_str != s;
      } else if (OutsideInterval(a, *s_num)) {
        excluded = true;
      }
    } else if (a.eq_str) {
      excluded = *a.eq_str != s;
    } else if (a_numeric_only) {
      excluded = true;  // Numeric text can never equal a non-numeric string.
    }
    if (!excluded) {
      for (const std::string& t : a.ne_str) excluded = excluded || t == s;
    }
    if (!excluded) return false;
  }
  for (const std::string& sub : b.contains) {
    if (sub.empty()) continue;  // Always true.
    bool covered = a.eq_str && a.eq_str->find(sub) != std::string::npos;
    for (const std::string& t : a.contains) {
      covered = covered || t.find(sub) != std::string::npos;
    }
    if (!covered) return false;
  }
  return true;
}

bool ConstraintsTrivial(const Constraints& c) {
  return !c.has_lower && !c.has_upper && !c.eq_num && !c.eq_str &&
         c.ne_num.empty() && c.ne_str.empty() && c.contains.empty();
}

bool SummarySubsumes(const RuleSummary& stronger, const RuleSummary& weaker) {
  if (!stronger.comparable || !weaker.comparable) return false;
  if (stronger.register_class.empty() ||
      stronger.register_class != weaker.register_class) {
    return false;
  }
  for (const auto& [key, wc] : weaker.by_path) {
    // A by_path entry exists only because a predicate touched the path;
    // on a set-valued path that predicate matches existentially per
    // element and is never folded, so nothing can be proven about it.
    if (!wc.conjunctive) return false;
    if (ConstraintsTrivial(wc)) continue;
    auto it = stronger.by_path.find(key);
    if (it == stronger.by_path.end()) return false;
    if (!it->second.conjunctive) return false;
    if (!KeyImplies(it->second, wc)) return false;
  }
  return true;
}

RuleSummary SummarizeForLint(const AnalyzedRule& rule,
                             const rdf::RdfSchema& schema, RuleLint* lint) {
  LintContext ctx{&lint->diagnostics, &lint->unsatisfiable};
  RuleSummary summary = Summarize(rule, schema, ctx);
  for (const auto& [key, constraints] : summary.by_path) {
    if (constraints.conjunctive) CheckConstraints(ctx, constraints);
  }
  return summary;
}

}  // namespace

const char* LintCodeToString(LintCode code) {
  switch (code) {
    case LintCode::kUnsatisfiable:
      return "unsatisfiable";
    case LintCode::kDuplicateRule:
      return "duplicate-rule";
    case LintCode::kSubsumedRule:
      return "subsumed-rule";
    case LintCode::kDeadExtension:
      return "dead-extension";
    case LintCode::kRedundantPredicate:
      return "redundant-predicate";
  }
  return "?";
}

std::string FormatLintDiagnostic(const LintDiagnostic& diagnostic) {
  std::string out =
      diagnostic.severity == LintSeverity::kError ? "error: " : "warning: ";
  if (!diagnostic.rule.empty()) {
    out += "rule '" + diagnostic.rule + "': ";
  }
  out += LintCodeToString(diagnostic.code);
  out += ": ";
  out += diagnostic.detail;
  if (!diagnostic.related.empty()) {
    out += " (see rule '" + diagnostic.related + "')";
  }
  return out;
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// diagnostic details embed rule text, which may contain either.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatLintDiagnosticJson(const LintDiagnostic& diagnostic) {
  std::string out = "{\"severity\": \"";
  out += diagnostic.severity == LintSeverity::kError ? "error" : "warning";
  out += "\", \"code\": \"";
  out += LintCodeToString(diagnostic.code);
  out += "\", \"rule\": \"";
  out += JsonEscape(diagnostic.rule);
  out += "\", \"related\": \"";
  out += JsonEscape(diagnostic.related);
  out += "\", \"detail\": \"";
  out += JsonEscape(diagnostic.detail);
  out += "\"}";
  return out;
}

bool HasLintErrors(const std::vector<LintDiagnostic>& diagnostics) {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity == LintSeverity::kError) return true;
  }
  return false;
}

RuleLint LintRule(const AnalyzedRule& rule, const rdf::RdfSchema& schema) {
  RuleLint lint;
  SummarizeForLint(rule, schema, &lint);
  return lint;
}

bool RuleSubsumes(const AnalyzedRule& stronger, const AnalyzedRule& weaker,
                  const rdf::RdfSchema& schema) {
  RuleLint scratch_a, scratch_b;
  RuleSummary a = SummarizeForLint(stronger, schema, &scratch_a);
  RuleSummary b = SummarizeForLint(weaker, schema, &scratch_b);
  if (scratch_a.unsatisfiable || scratch_b.unsatisfiable) return false;
  return SummarySubsumes(a, b);
}

std::vector<LintDiagnostic> LintRuleBase(
    const std::vector<LintRuleBaseEntry>& rules,
    const rdf::RdfSchema& schema) {
  std::vector<LintDiagnostic> out;
  std::vector<RuleSummary> summaries;
  std::vector<bool> unsat(rules.size(), false);
  summaries.reserve(rules.size());

  for (size_t i = 0; i < rules.size(); ++i) {
    RuleLint lint;
    summaries.push_back(SummarizeForLint(*rules[i].rule, schema, &lint));
    unsat[i] = lint.unsatisfiable;
    for (LintDiagnostic& d : lint.diagnostics) {
      d.rule = rules[i].name;
      out.push_back(std::move(d));
    }
  }

  // Pairwise duplicates and subsumption (satisfiable rules only —
  // everything implies an unsatisfiable rule).
  for (size_t i = 0; i < rules.size(); ++i) {
    if (unsat[i]) continue;
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (unsat[j]) continue;
      const bool i_implies_j = SummarySubsumes(summaries[i], summaries[j]);
      const bool j_implies_i = SummarySubsumes(summaries[j], summaries[i]);
      if (i_implies_j && j_implies_i) {
        out.push_back(LintDiagnostic{
            LintCode::kDuplicateRule, LintSeverity::kWarning, rules[j].name,
            rules[i].name,
            "matches exactly the resources of rule '" + rules[i].name + "'"});
      } else if (i_implies_j) {
        out.push_back(LintDiagnostic{
            LintCode::kSubsumedRule, LintSeverity::kWarning, rules[i].name,
            rules[j].name,
            "every resource it matches is already matched by the weaker "
            "rule '" +
                rules[j].name + "'"});
      } else if (j_implies_i) {
        out.push_back(LintDiagnostic{
            LintCode::kSubsumedRule, LintSeverity::kWarning, rules[j].name,
            rules[i].name,
            "every resource it matches is already matched by the weaker "
            "rule '" +
                rules[i].name + "'"});
      }
    }
  }

  // Dead extension chains: extending a rule that can never fire.
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < rules.size(); ++i) index_of[rules[i].name] = i;
  std::vector<bool> dead = unsat;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rules.size(); ++i) {
      if (dead[i]) continue;
      for (const auto& [var, is_rule_ext] :
           rules[i].rule->variable_is_rule_extension) {
        if (!is_rule_ext) continue;
        auto ext = rules[i].rule->variable_extension.find(var);
        if (ext == rules[i].rule->variable_extension.end()) continue;
        auto target = index_of.find(ext->second);
        if (target == index_of.end()) continue;  // Outside this base.
        if (dead[target->second]) {
          out.push_back(LintDiagnostic{
              LintCode::kDeadExtension, LintSeverity::kError, rules[i].name,
              rules[target->second].name,
              "extends rule '" + rules[target->second].name +
                  "', which can never fire"});
          dead[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace mdv::rules
