#ifndef MDV_RULES_AST_H_
#define MDV_RULES_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "rdbms/predicate.h"

namespace mdv::rules {

/// One step of a path expression. `any` marks the rule language's `?`
/// operator for set-valued properties (§2.3); matching semantics are
/// existential either way because set-valued properties decompose into
/// one atom per element.
struct PathStep {
  std::string property;
  bool any = false;

  bool operator==(const PathStep& other) const {
    return property == other.property && any == other.any;
  }
};

/// A path expression `v.p1.p2...`; `steps` may be empty, denoting the
/// variable itself (its resource / URI reference).
struct PathExpr {
  std::string variable;
  std::vector<PathStep> steps;

  bool IsBareVariable() const { return steps.empty(); }
  std::string ToString() const;

  bool operator==(const PathExpr& other) const {
    return variable == other.variable && steps == other.steps;
  }
};

/// One side of an elementary predicate: a path expression or a constant.
struct Operand {
  enum class Kind { kPath, kString, kNumber };

  Kind kind = Kind::kPath;
  PathExpr path;        // kPath
  std::string text;     // kString (raw characters) / kNumber (lexeme)
  double number = 0.0;  // kNumber

  static Operand Path(PathExpr p) {
    Operand o;
    o.kind = Kind::kPath;
    o.path = std::move(p);
    return o;
  }
  static Operand String(std::string s) {
    Operand o;
    o.kind = Kind::kString;
    o.text = std::move(s);
    return o;
  }
  static Operand Number(double value, std::string lexeme) {
    Operand o;
    o.kind = Kind::kNumber;
    o.number = value;
    o.text = std::move(lexeme);
    return o;
  }

  bool is_path() const { return kind == Kind::kPath; }
  bool is_constant() const { return kind != Kind::kPath; }
  std::string ToString() const;
};

/// An elementary predicate `X o Y` (§2.3). The where part of a rule is a
/// conjunction of these; `or` is not supported (the paper notes rules
/// with `or` can be split into multiple rules).
struct PredicateExpr {
  Operand lhs;
  rdbms::CompareOp op = rdbms::CompareOp::kEq;
  Operand rhs;

  std::string ToString() const;
};

/// An entry of the search clause: `Extension variable`, where Extension
/// is a schema class or the name of another subscription rule (§2.3).
struct SearchEntry {
  std::string extension;
  std::string variable;
};

/// Parsed form of `search E1 v1, E2 v2 register v where P1 and P2 ...`.
struct RuleAst {
  std::vector<SearchEntry> search;
  std::string register_variable;
  std::vector<PredicateExpr> where;

  /// Re-serializes the rule in canonical surface syntax.
  std::string ToString() const;
};

}  // namespace mdv::rules

#endif  // MDV_RULES_AST_H_
