#include "rules/normalizer.h"

#include <map>

namespace mdv::rules {

namespace {

/// Allocates auxiliary variables `_v1`, `_v2`, ... that do not collide
/// with declared variables.
class VariableAllocator {
 public:
  explicit VariableAllocator(const AnalyzedRule& rule) : rule_(rule) {}

  std::string Fresh() {
    while (true) {
      std::string candidate = "_v" + std::to_string(++counter_);
      if (rule_.variable_class.count(candidate) == 0) return candidate;
    }
  }

 private:
  const AnalyzedRule& rule_;
  int counter_ = 0;
};

}  // namespace

Result<AnalyzedRule> NormalizeRule(const AnalyzedRule& rule,
                                   const rdf::RdfSchema& schema) {
  AnalyzedRule out;
  out.ast.search = rule.ast.search;
  out.ast.register_variable = rule.ast.register_variable;
  out.variable_class = rule.variable_class;
  out.variable_extension = rule.variable_extension;
  out.variable_is_rule_extension = rule.variable_is_rule_extension;

  VariableAllocator allocator(rule);
  // (variable, dotted prefix) → auxiliary variable standing for the
  // resource reached through that prefix.
  std::map<std::pair<std::string, std::string>, std::string> prefix_vars;
  std::vector<PredicateExpr> join_preds;   // Introduced by path splitting.
  std::vector<PredicateExpr> rewritten;    // Original predicates, rewritten.

  // Rewrites a multi-step path to a one-step path (or bare variable),
  // introducing auxiliary variables and reference joins for the prefix.
  auto shorten_path = [&](const PathExpr& path) -> Result<PathExpr> {
    if (path.steps.size() <= 1) return path;
    std::string current_var = path.variable;
    std::string current_class = out.variable_class.at(path.variable);
    std::string prefix;
    for (size_t i = 0; i + 1 < path.steps.size(); ++i) {
      const PathStep& step = path.steps[i];
      const rdf::PropertyDef* prop =
          schema.FindProperty(current_class, step.property);
      if (prop == nullptr || prop->kind != rdf::PropertyKind::kReference) {
        return Status::Internal("path step " + current_class + "." +
                                step.property +
                                " is not a reference (analyzer should have "
                                "rejected this rule)");
      }
      prefix += "." + step.property;
      auto key = std::make_pair(path.variable, prefix);
      auto it = prefix_vars.find(key);
      std::string next_var;
      if (it != prefix_vars.end()) {
        next_var = it->second;
      } else {
        next_var = allocator.Fresh();
        prefix_vars.emplace(key, next_var);
        out.variable_class[next_var] = prop->referenced_class;
        out.variable_extension[next_var] = prop->referenced_class;
        out.variable_is_rule_extension[next_var] = false;
        out.ast.search.push_back(SearchEntry{prop->referenced_class, next_var});
        // current_var.step = next_var
        PredicateExpr join;
        join.lhs = Operand::Path(
            PathExpr{current_var, {PathStep{step.property, step.any}}});
        join.op = rdbms::CompareOp::kEq;
        join.rhs = Operand::Path(PathExpr{next_var, {}});
        join_preds.push_back(std::move(join));
      }
      current_var = next_var;
      current_class = prop->referenced_class;
    }
    PathExpr shortened;
    shortened.variable = current_var;
    shortened.steps.push_back(path.steps.back());
    return shortened;
  };

  for (const PredicateExpr& pred : rule.ast.where) {
    PredicateExpr p = pred;
    if (p.lhs.is_path()) {
      MDV_ASSIGN_OR_RETURN(p.lhs.path, shorten_path(p.lhs.path));
    }
    if (p.rhs.is_path()) {
      MDV_ASSIGN_OR_RETURN(p.rhs.path, shorten_path(p.rhs.path));
    }
    // Canonical form: constants on the right.
    if (p.lhs.is_constant() && p.rhs.is_path()) {
      std::swap(p.lhs, p.rhs);
      p.op = rdbms::FlipCompareOp(p.op);
    }
    rewritten.push_back(std::move(p));
  }

  out.ast.where = std::move(join_preds);
  out.ast.where.insert(out.ast.where.end(), rewritten.begin(),
                       rewritten.end());
  return out;
}

}  // namespace mdv::rules
