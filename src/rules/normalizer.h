#ifndef MDV_RULES_NORMALIZER_H_
#define MDV_RULES_NORMALIZER_H_

#include "common/result.h"
#include "rdf/schema.h"
#include "rules/analyzer.h"

namespace mdv::rules {

/// Normalizes an analyzed rule (§3.3): the result's search clause names
/// every class used anywhere in the where part, and no path expression is
/// longer than one step (property access only). Multi-step paths are split
/// by introducing auxiliary variables and reference-equality join
/// predicates:
///
///   search CycleProvider c register c
///   where c.serverInformation.memory > 64
///
/// becomes
///
///   search CycleProvider c, ServerInformation s register c
///   where c.serverInformation = s and s.memory > 64
///
/// Identical path prefixes of the same variable share one auxiliary
/// variable (so `.memory` and `.cpu` under the same reference bind to the
/// same `s`, matching the paper's §3.3.1 example). Constants are also
/// moved to the right-hand side of their predicates (flipping the
/// operator as needed), which simplifies decomposition.
Result<AnalyzedRule> NormalizeRule(const AnalyzedRule& rule,
                                   const rdf::RdfSchema& schema);

}  // namespace mdv::rules

#endif  // MDV_RULES_NORMALIZER_H_
