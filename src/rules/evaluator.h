#ifndef MDV_RULES_EVALUATOR_H_
#define MDV_RULES_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/document.h"
#include "rules/analyzer.h"

namespace mdv::rules {

/// A resource collection the evaluator ranges over: URI reference →
/// resource. Both keys and resources must stay valid during evaluation.
using ResourceMap = std::map<std::string, const rdf::Resource*>;

/// Directly evaluates a *normalized* rule against an in-memory resource
/// collection by backtracking over the variables (a nested-loop join).
///
/// This is the semantics baseline of the rule language: the LMR query
/// processor uses it over the cache, and the filter tests use it as an
/// oracle the incremental filter algorithm must agree with. Text
/// comparisons reconvert numeric-looking values, mirroring the filter
/// (§3.3.4). Rule-valued extensions are not supported here (the caller
/// must resolve them to classes first).
///
/// Returns the URI references of the registered resources, sorted.
Result<std::vector<std::string>> EvaluateRule(const AnalyzedRule& normalized,
                                              const ResourceMap& resources);

/// Convenience: compiles (parse → analyze → normalize) and evaluates
/// `rule_text` over `resources`.
Result<std::vector<std::string>> EvaluateRuleText(
    std::string_view rule_text, const rdf::RdfSchema& schema,
    const ResourceMap& resources);

/// Text comparison with numeric reconversion (§3.3.4): numeric when both
/// sides parse as numbers, string otherwise; `contains` is substring.
bool CompareValueTexts(const std::string& lhs, rdbms::CompareOp op,
                       const std::string& rhs);

}  // namespace mdv::rules

#endif  // MDV_RULES_EVALUATOR_H_
