#ifndef MDV_RULES_DECOMPOSER_H_
#define MDV_RULES_DECOMPOSER_H_

#include <functional>
#include <optional>
#include <string>

#include "common/result.h"
#include "rules/analyzer.h"
#include "rules/atomic_rule.h"

namespace mdv::rules {

/// Resolution of an extension that names another subscription rule: the
/// type it registers and the global id of its end atomic rule.
struct ExternalExtension {
  std::string type;
  int64_t end_rule_id = -1;
};

using RuleExtensionResolver =
    std::function<std::optional<ExternalExtension>(const std::string& name)>;

/// Decomposes a *normalized* rule into atomic rules (§3.3.1):
///
///  1. Every predicate comparing a property (or the bare variable, for
///     OID rules) against a constant becomes a triggering rule; classes
///     without such a predicate get a predicate-less triggering rule.
///     Several triggering rules for the same variable are intersected
///     with bare-equality join rules (the paper's `a = b`).
///  2. The remaining (join) predicates are consumed one at a time, each
///     producing a join rule over two current inputs. The register side
///     of each join rule is the side whose variable is still needed by
///     later predicates (or is the rule's register variable) — exactly
///     how the paper derives RuleE/RuleF from RuleD.
///
/// The result is the rule's dependency tree (§3.3.2): triggering rules as
/// leaves, join rules as inner nodes, the end rule as root.
///
/// Limitations (reported as Unsupported): join graphs where a
/// non-equality join would have to forward both sides' variables
/// (cyclic join graphs), and search-clause variables not connected to
/// the register variable (cartesian products).
Result<DecomposedRule> DecomposeRule(
    const AnalyzedRule& normalized,
    const RuleExtensionResolver& resolver = nullptr);

}  // namespace mdv::rules

#endif  // MDV_RULES_DECOMPOSER_H_
