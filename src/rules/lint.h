#ifndef MDV_RULES_LINT_H_
#define MDV_RULES_LINT_H_

#include <string>
#include <vector>

#include "rdf/schema.h"
#include "rules/analyzer.h"

namespace mdv::rules {

/// Static analysis over the rule base, run after type checking
/// (AnalyzeRule). The filter evaluates every registered rule against
/// every publication (§4), so unsatisfiable, duplicate, or subsumed
/// rules silently burn index probes and join work on every delta. The
/// linter reports them before they reach the dependency graph:
///
///  - *Unsatisfiability*: interval reasoning over the constant
///    comparisons of each (variable, path) — contradictory bounds
///    (`x.p > 100 and x.p < 50`), contradictory equalities
///    (`x.p = 1 and x.p = 2`, `x.p = 'a' and x.p != 'a'`), equalities
///    outside the admissible interval, `contains` incompatible with a
///    string equality, and self-comparisons that can never hold
///    (`x.p < x.p` on a single-valued property).
///  - *Duplicates and subsumption*: rule A's predicate conjunction
///    implies rule B's over the same class and paths, so B's
///    notifications are redundant (duplicate) or A could share B's
///    predicate index entries (A subsumed by the weaker B).
///  - *Dead extension chains*: rules whose search clause extends
///    another subscription rule (§2.3) that can never fire.
///
/// The analysis is conservative: it only reports what it can prove, so
/// every kError diagnostic is a genuine contradiction, while the absence
/// of diagnostics does not certify satisfiability (paths touching
/// set-valued properties match existentially per element and are
/// excluded from conjunction reasoning).
enum class LintSeverity { kError, kWarning };

enum class LintCode {
  kUnsatisfiable,        ///< The where conjunction can never hold.
  kDuplicateRule,        ///< Matches exactly the same resources as another.
  kSubsumedRule,         ///< Every match is already produced by another.
  kDeadExtension,        ///< Extends a rule that can never fire.
  kRedundantPredicate,   ///< A conjunct implied by the others (or repeated).
};

const char* LintCodeToString(LintCode code);

/// One finding. `rule` / `related` carry rule names when linting a rule
/// base; single-rule lint leaves them empty. `detail` names the variable,
/// path and conflicting constants so diagnostics are actionable.
struct LintDiagnostic {
  LintCode code = LintCode::kUnsatisfiable;
  LintSeverity severity = LintSeverity::kError;
  std::string rule;
  std::string related;
  std::string detail;
};

/// `error: rule 'r': unsatisfiable: ...` — the CLI's output format.
std::string FormatLintDiagnostic(const LintDiagnostic& diagnostic);

/// The same finding as one JSON object on a single line:
/// {"severity": "error", "code": "unsatisfiable", "rule": "r",
///  "related": "", "detail": "..."} — the machine-readable lint format
/// (`mdv_lint --json`) consumed by CI and editor integrations. Keys are
/// emitted in that fixed order; string values are escaped per JSON.
std::string FormatLintDiagnosticJson(const LintDiagnostic& diagnostic);

/// True if any diagnostic has severity kError.
bool HasLintErrors(const std::vector<LintDiagnostic>& diagnostics);

/// Result of linting a single rule.
struct RuleLint {
  std::vector<LintDiagnostic> diagnostics;
  /// True when the where conjunction is provably unsatisfiable.
  bool unsatisfiable = false;
};

/// Lints one analyzed rule in isolation: satisfiability of its constant
/// constraints and redundant-predicate warnings.
RuleLint LintRule(const AnalyzedRule& rule, const rdf::RdfSchema& schema);

/// True when `stronger` provably matches a subset of the resources
/// `weaker` matches (both must register resources of the same class;
/// only single-variable, constant-constraint rules are compared — any
/// join or rule extension makes the check return false).
bool RuleSubsumes(const AnalyzedRule& stronger, const AnalyzedRule& weaker,
                  const rdf::RdfSchema& schema);

/// One named rule of a rule base under lint.
struct LintRuleBaseEntry {
  std::string name;
  const AnalyzedRule* rule = nullptr;
};

/// Lints a whole rule base: per-rule satisfiability (diagnostics carry
/// the rule name), pairwise duplicate/subsumption warnings, and dead
/// extension chains (a rule extending an unsatisfiable — or transitively
/// dead — rule is itself flagged kDeadExtension, severity kError).
std::vector<LintDiagnostic> LintRuleBase(
    const std::vector<LintRuleBaseEntry>& rules, const rdf::RdfSchema& schema);

}  // namespace mdv::rules

#endif  // MDV_RULES_LINT_H_
