#ifndef MDV_RULES_PARSER_H_
#define MDV_RULES_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "rules/ast.h"

namespace mdv::rules {

/// Parses rule text in the MDV subscription rule language (§2.3):
///
///   search Extension v [, Extension v ...]
///   register v
///   [where X o Y [and X o Y ...]]
///
/// with o in {=, !=, <, <=, >, >=, contains}, operands either constants
/// ('string' or number) or path expressions (v.p1.p2, `?` after a step
/// marks the any operator). Disjunction is not supported; split rules
/// containing `or` into several rules (paper §2.3).
Result<RuleAst> ParseRule(std::string_view text);

}  // namespace mdv::rules

#endif  // MDV_RULES_PARSER_H_
