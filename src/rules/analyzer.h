#ifndef MDV_RULES_ANALYZER_H_
#define MDV_RULES_ANALYZER_H_

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/result.h"
#include "rdf/schema.h"
#include "rules/ast.h"

namespace mdv::rules {

/// Resolves an extension name that is not a schema class to the type
/// (class) of another registered subscription rule (§2.3: an extension is
/// "either some class defined in the schema or another subscription
/// rule"). Returns nullopt if the name is not a known rule either.
using ExtensionResolver =
    std::function<std::optional<std::string>(const std::string& name)>;

/// A rule with every variable bound to an RDF class and every predicate
/// type-checked against the schema.
struct AnalyzedRule {
  RuleAst ast;
  /// variable → RDF class of the resources it ranges over.
  std::map<std::string, std::string> variable_class;
  /// variable → the extension it was declared with (class name, or the
  /// name of another subscription rule).
  std::map<std::string, std::string> variable_extension;
  /// Variables whose extension is another subscription rule.
  std::map<std::string, bool> variable_is_rule_extension;
};

/// Validates `rule` against `schema`:
///  - every extension is a schema class or resolvable via `resolver`;
///  - variables are unique and the register variable is declared;
///  - every path expression resolves (each non-final step is a reference
///    property, `?` only on set-valued properties);
///  - each predicate relates compatible operands; ordered comparisons
///    (< <= > >=) with constants require numeric constants (§3.3.4);
///  - no predicate is constant-only.
Result<AnalyzedRule> AnalyzeRule(const RuleAst& rule,
                                 const rdf::RdfSchema& schema,
                                 const ExtensionResolver& resolver = nullptr);

}  // namespace mdv::rules

#endif  // MDV_RULES_ANALYZER_H_
