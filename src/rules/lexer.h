#ifndef MDV_RULES_LEXER_H_
#define MDV_RULES_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mdv::rules {

enum class TokenKind {
  kIdentifier,    ///< Class, rule, variable, or property name.
  kKeywordSearch,
  kKeywordRegister,
  kKeywordWhere,
  kKeywordAnd,
  kKeywordContains,
  kString,  ///< 'single-quoted literal' ('' escapes a quote).
  kNumber,
  kDot,
  kComma,
  kQuestion,  ///< The any operator `?` (§2.3).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< Identifier/lexeme; string contents for kString.
  double number = 0.0; ///< For kNumber.
  size_t offset = 0;   ///< Byte offset in the input, for error messages.
};

/// Tokenizes rule text. Keywords are case-insensitive (search/SEARCH);
/// identifiers keep their case. ParseError on malformed input.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace mdv::rules

#endif  // MDV_RULES_LEXER_H_
