#include "rules/ast.h"

namespace mdv::rules {

std::string PathExpr::ToString() const {
  std::string out = variable;
  for (const PathStep& step : steps) {
    out += ".";
    out += step.property;
    if (step.any) out += "?";
  }
  return out;
}

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kPath:
      return path.ToString();
    case Kind::kString:
      return "'" + text + "'";
    case Kind::kNumber:
      return text;
  }
  return "?";
}

std::string PredicateExpr::ToString() const {
  return lhs.ToString() + " " + rdbms::CompareOpToString(op) + " " +
         rhs.ToString();
}

std::string RuleAst::ToString() const {
  std::string out = "search ";
  for (size_t i = 0; i < search.size(); ++i) {
    if (i > 0) out += ", ";
    out += search[i].extension + " " + search[i].variable;
  }
  out += " register " + register_variable;
  if (!where.empty()) {
    out += " where ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) out += " and ";
      out += where[i].ToString();
    }
  }
  return out;
}

}  // namespace mdv::rules
