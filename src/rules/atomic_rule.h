#ifndef MDV_RULES_ATOMIC_RULE_H_
#define MDV_RULES_ATOMIC_RULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdbms/predicate.h"

namespace mdv::rules {

/// The two kinds of atomic rules produced by decomposition (§3.3): a
/// *triggering rule* refers to a single class and compares one property
/// against a constant (or has no predicate at all); a *join rule* joins
/// the results of two other atomic rules with one join predicate.
enum class AtomicRuleKind { kTriggering, kJoin };

/// The where part of a triggering rule. `property` is the FilterData
/// property the predicate reads; OID rules (bare `c = 'uri'`) use the
/// synthetic rdf#subject property (§3.2). `constant` is always stored as
/// a string and reconverted for numeric comparisons (§3.3.4).
struct TriggeringPredicate {
  std::string property;
  rdbms::CompareOp op = rdbms::CompareOp::kEq;
  std::string constant;
  bool constant_is_number = false;
};

/// Specification of a triggering rule: `search C v register v [where
/// v.property op constant]`.
struct TriggeringSpec {
  std::string class_name;
  std::optional<TriggeringPredicate> predicate;
};

/// One side of a join predicate: the resources of one input rule,
/// optionally dereferenced through a property. An empty property denotes
/// the resource itself (its URI reference).
struct JoinSideSpec {
  std::string property;
};

/// Specification of a join rule: `search L a, R b register <side> where
/// a[.p] op b[.q]`. `left_class`/`right_class` are the types of the two
/// input rules; together with the predicate they form the rule-group key
/// (§3.3.3): join rules with equal where parts over equally-typed inputs
/// share a group regardless of which concrete rules feed them.
struct JoinSpec {
  std::string left_class;
  std::string right_class;
  JoinSideSpec lhs;
  JoinSideSpec rhs;
  rdbms::CompareOp op = rdbms::CompareOp::kEq;
  int register_side = 0;  ///< 0 = left input's resources, 1 = right.

  /// The rule-group key (everything except the concrete input rules).
  std::string GroupKey() const;
};

/// A node of the dependency tree produced by decomposing one
/// subscription rule (§3.3.2). Children are indices into
/// DecomposedRule::atoms; external nodes reference the end rule of
/// another subscription rule (rule-valued extensions, §2.3).
struct AtomicRuleNode {
  AtomicRuleKind kind = AtomicRuleKind::kTriggering;
  /// Class of the resources this atomic rule registers (its *type*).
  std::string type;

  TriggeringSpec trigger;                  // kind == kTriggering
  JoinSpec join;                           // kind == kJoin
  int left_child = -1;                     // kind == kJoin
  int right_child = -1;                    // kind == kJoin

  /// Set when this leaf is the already-registered end rule of another
  /// subscription; `external_rule_id` is its global atomic-rule id.
  bool is_external = false;
  int64_t external_rule_id = -1;
};

/// The dependency tree of one decomposed subscription rule: triggering
/// rules as leaves, join rules as inner nodes, the end rule at `root`.
struct DecomposedRule {
  std::vector<AtomicRuleNode> atoms;
  int root = -1;

  const AtomicRuleNode& root_node() const { return atoms[root]; }
};

/// Canonical text of a triggering spec, used for duplicate elimination
/// when merging into the global dependency graph ("no rules having the
/// same rule text but different rule_ids", §3.3.4).
std::string TriggeringRuleText(const TriggeringSpec& spec);

/// Canonical text of a join rule given the global ids of its inputs.
std::string JoinRuleText(const JoinSpec& spec, int64_t left_id,
                         int64_t right_id);

}  // namespace mdv::rules

#endif  // MDV_RULES_ATOMIC_RULE_H_
