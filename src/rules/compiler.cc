#include "rules/compiler.h"

namespace mdv::rules {

Result<CompiledRule> CompileRule(std::string_view text,
                                 const rdf::RdfSchema& schema,
                                 const ExtensionResolver& extension_resolver,
                                 const RuleExtensionResolver& rule_resolver) {
  CompiledRule compiled;
  compiled.text = std::string(text);
  MDV_ASSIGN_OR_RETURN(RuleAst ast, ParseRule(text));
  MDV_ASSIGN_OR_RETURN(compiled.analyzed,
                       AnalyzeRule(ast, schema, extension_resolver));
  MDV_ASSIGN_OR_RETURN(compiled.normalized,
                       NormalizeRule(compiled.analyzed, schema));
  MDV_ASSIGN_OR_RETURN(compiled.decomposed,
                       DecomposeRule(compiled.normalized, rule_resolver));
  return compiled;
}

}  // namespace mdv::rules
