#include "rules/atomic_rule.h"

namespace mdv::rules {

std::string JoinSpec::GroupKey() const {
  std::string out = "G|";
  out += left_class;
  out += "|";
  out += right_class;
  out += "|";
  out += lhs.property;
  out += "|";
  out += rdbms::CompareOpToString(op);
  out += "|";
  out += rhs.property;
  out += "|";
  out += std::to_string(register_side);
  return out;
}

std::string TriggeringRuleText(const TriggeringSpec& spec) {
  std::string out = "T|";
  out += spec.class_name;
  if (spec.predicate) {
    out += "|";
    out += spec.predicate->property;
    out += "|";
    out += rdbms::CompareOpToString(spec.predicate->op);
    out += "|";
    out += spec.predicate->constant;
    out += "|";
    out += spec.predicate->constant_is_number ? "N" : "S";
  }
  return out;
}

std::string JoinRuleText(const JoinSpec& spec, int64_t left_id,
                         int64_t right_id) {
  std::string out = "J|";
  out += std::to_string(left_id);
  out += "|";
  out += std::to_string(right_id);
  out += "|";
  out += spec.lhs.property;
  out += "|";
  out += rdbms::CompareOpToString(spec.op);
  out += "|";
  out += spec.rhs.property;
  out += "|";
  out += std::to_string(spec.register_side);
  return out;
}

}  // namespace mdv::rules
