#include "rules/evaluator.h"

#include <algorithm>

#include <functional>

#include "common/string_util.h"
#include "rdbms/predicate.h"
#include "rules/normalizer.h"
#include "rules/parser.h"

namespace mdv::rules {

bool CompareValueTexts(const std::string& lhs, rdbms::CompareOp op,
                       const std::string& rhs) {
  if (op == rdbms::CompareOp::kContains) return Contains(lhs, rhs);
  rdbms::Value a{lhs};
  rdbms::Value b{rhs};
  auto an = a.TryNumeric();
  auto bn = b.TryNumeric();
  if (an && bn) {
    return rdbms::EvaluateCompare(rdbms::Value(*an), op, rdbms::Value(*bn));
  }
  return rdbms::EvaluateCompare(a, op, b);
}

Result<std::vector<std::string>> EvaluateRule(const AnalyzedRule& normalized,
                                              const ResourceMap& resources) {
  const std::vector<SearchEntry>& vars = normalized.ast.search;
  if (vars.empty()) {
    return Status::InvalidArgument("rule without search clause");
  }
  for (const auto& [var, is_rule] : normalized.variable_is_rule_extension) {
    if (is_rule) {
      return Status::Unsupported(
          "EvaluateRule does not resolve rule-valued extensions (variable " +
          var + ")");
    }
  }

  // Candidates per variable: resources of the variable's class.
  std::vector<std::vector<ResourceMap::const_iterator>> candidates(
      vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    const std::string& cls = normalized.variable_class.at(vars[i].variable);
    for (auto it = resources.begin(); it != resources.end(); ++it) {
      if (it->second->class_name() == cls) candidates[i].push_back(it);
    }
  }

  std::map<std::string, size_t> var_index;
  for (size_t i = 0; i < vars.size(); ++i) {
    var_index[vars[i].variable] = i;
  }
  std::vector<ResourceMap::const_iterator> binding(vars.size(),
                                                   resources.end());

  auto operand_values =
      [&](const Operand& op) -> std::vector<std::string> {
    if (op.kind != Operand::Kind::kPath) return {op.text};
    size_t idx = var_index.at(op.path.variable);
    auto bound = binding[idx];
    if (op.path.IsBareVariable()) return {bound->first};
    std::vector<std::string> out;
    for (const rdf::PropertyValue& value :
         bound->second->FindProperties(op.path.steps[0].property)) {
      out.push_back(value.text());
    }
    return out;
  };
  auto side_ready = [&](const Operand& op) {
    return op.kind != Operand::Kind::kPath ||
           binding[var_index.at(op.path.variable)] != resources.end();
  };
  auto pred_holds = [&](const PredicateExpr& pred) {
    for (const std::string& lhs : operand_values(pred.lhs)) {
      for (const std::string& rhs : operand_values(pred.rhs)) {
        if (CompareValueTexts(lhs, pred.op, rhs)) return true;
      }
    }
    return false;
  };

  size_t register_idx = var_index.at(normalized.ast.register_variable);
  std::vector<std::string> results;

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == vars.size()) {
      results.push_back(binding[register_idx]->first);
      return;
    }
    for (auto candidate : candidates[depth]) {
      binding[depth] = candidate;
      bool ok = true;
      for (const PredicateExpr& pred : normalized.ast.where) {
        auto newly_bound = [&](const Operand& op) {
          return op.kind == Operand::Kind::kPath &&
                 var_index.at(op.path.variable) == depth;
        };
        // Check each predicate as soon as all of its variables are bound
        // (at the depth that binds the last one).
        if ((newly_bound(pred.lhs) || newly_bound(pred.rhs)) &&
            side_ready(pred.lhs) && side_ready(pred.rhs) &&
            !pred_holds(pred)) {
          ok = false;
          break;
        }
      }
      if (ok) recurse(depth + 1);
      binding[depth] = resources.end();
    }
  };
  recurse(0);

  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

Result<std::vector<std::string>> EvaluateRuleText(
    std::string_view rule_text, const rdf::RdfSchema& schema,
    const ResourceMap& resources) {
  MDV_ASSIGN_OR_RETURN(RuleAst ast, ParseRule(rule_text));
  MDV_ASSIGN_OR_RETURN(AnalyzedRule analyzed, AnalyzeRule(ast, schema));
  MDV_ASSIGN_OR_RETURN(AnalyzedRule normalized,
                       NormalizeRule(analyzed, schema));
  return EvaluateRule(normalized, resources);
}

}  // namespace mdv::rules
