#ifndef MDV_RULES_COMPILER_H_
#define MDV_RULES_COMPILER_H_

#include <string_view>

#include "common/result.h"
#include "rdf/schema.h"
#include "rules/analyzer.h"
#include "rules/decomposer.h"
#include "rules/normalizer.h"
#include "rules/parser.h"

namespace mdv::rules {

/// A fully compiled subscription rule: the original text, its normalized
/// form, and the dependency tree of atomic rules.
struct CompiledRule {
  std::string text;
  AnalyzedRule analyzed;
  AnalyzedRule normalized;
  DecomposedRule decomposed;

  /// Class of the resources the rule registers (its type, §3.3.1).
  const std::string& type() const { return decomposed.root_node().type; }
};

/// Runs the whole front-end: parse → analyze → normalize → decompose.
/// `extension_resolver`/`rule_resolver` supply types and end-rule ids for
/// extensions that name other subscription rules; both may be null when
/// rules only use schema classes.
Result<CompiledRule> CompileRule(
    std::string_view text, const rdf::RdfSchema& schema,
    const ExtensionResolver& extension_resolver = nullptr,
    const RuleExtensionResolver& rule_resolver = nullptr);

}  // namespace mdv::rules

#endif  // MDV_RULES_COMPILER_H_
