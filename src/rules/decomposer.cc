#include "rules/decomposer.h"

#include <map>
#include <set>

#include "rdf/document.h"

namespace mdv::rules {

namespace {

struct ConstantPred {
  std::string property;  // rdf#subject for bare-variable (OID) predicates.
  rdbms::CompareOp op;
  std::string constant;
  bool is_number;
};

/// Renders a constant operand as the string stored in the filter tables
/// (§3.3.4: constants are stored as strings and reconverted).
std::string ConstantText(const Operand& operand) {
  return operand.text;
}

}  // namespace

Result<DecomposedRule> DecomposeRule(const AnalyzedRule& normalized,
                                     const RuleExtensionResolver& resolver) {
  DecomposedRule out;
  const RuleAst& ast = normalized.ast;

  // ---- Partition predicates into constant and join predicates. --------
  std::map<std::string, std::vector<ConstantPred>> constant_preds;
  std::vector<PredicateExpr> join_preds;
  for (const PredicateExpr& pred : ast.where) {
    if (pred.lhs.is_path() && pred.rhs.is_constant()) {
      const PathExpr& path = pred.lhs.path;
      if (path.steps.size() > 1) {
        return Status::Internal("rule is not normalized: path " +
                                path.ToString());
      }
      ConstantPred cp;
      cp.property =
          path.IsBareVariable() ? rdf::kRdfSubjectProperty
                                : path.steps[0].property;
      cp.op = pred.op;
      cp.constant = ConstantText(pred.rhs);
      cp.is_number = pred.rhs.kind == Operand::Kind::kNumber;
      constant_preds[path.variable].push_back(std::move(cp));
    } else if (pred.lhs.is_path() && pred.rhs.is_path()) {
      if (pred.lhs.path.steps.size() > 1 || pred.rhs.path.steps.size() > 1) {
        return Status::Internal("rule is not normalized: predicate " +
                                pred.ToString());
      }
      join_preds.push_back(pred);
    } else {
      // Normalization puts constants on the right; two constants are
      // rejected by the analyzer.
      return Status::Internal("unexpected predicate shape: " +
                              pred.ToString());
    }
  }

  // ---- Per-variable leaf inputs. ---------------------------------------
  // Each variable gets one current input node: the fold (by bare-equality
  // join rules) of its triggering rules, plus — for rule-valued
  // extensions — the external end rule.
  std::map<std::string, int> node_of_var;

  auto add_node = [&](AtomicRuleNode node) {
    out.atoms.push_back(std::move(node));
    return static_cast<int>(out.atoms.size() - 1);
  };
  auto fold_pair = [&](int left, int right) {
    AtomicRuleNode node;
    node.kind = AtomicRuleKind::kJoin;
    node.type = out.atoms[left].type;
    node.left_child = left;
    node.right_child = right;
    node.join.left_class = out.atoms[left].type;
    node.join.right_class = out.atoms[right].type;
    node.join.op = rdbms::CompareOp::kEq;
    node.join.register_side = 0;
    return add_node(std::move(node));
  };

  for (const SearchEntry& entry : ast.search) {
    const std::string& var = entry.variable;
    const std::string& cls = normalized.variable_class.at(var);
    std::vector<int> inputs;

    if (normalized.variable_is_rule_extension.at(var)) {
      if (!resolver) {
        return Status::InvalidArgument(
            "rule extension " + entry.extension +
            " used but no rule resolver available");
      }
      std::optional<ExternalExtension> ext = resolver(entry.extension);
      if (!ext) {
        return Status::NotFound("rule extension " + entry.extension);
      }
      AtomicRuleNode node;
      node.kind = AtomicRuleKind::kTriggering;  // Leaf position.
      node.type = ext->type;
      node.is_external = true;
      node.external_rule_id = ext->end_rule_id;
      inputs.push_back(add_node(std::move(node)));
    }

    auto it = constant_preds.find(var);
    if (it != constant_preds.end()) {
      for (const ConstantPred& cp : it->second) {
        AtomicRuleNode node;
        node.kind = AtomicRuleKind::kTriggering;
        node.type = cls;
        node.trigger.class_name = cls;
        node.trigger.predicate = TriggeringPredicate{
            cp.property, cp.op, cp.constant, cp.is_number};
        inputs.push_back(add_node(std::move(node)));
      }
    }
    if (inputs.empty()) {
      // Class without any constant predicate: triggering rule without a
      // where clause (matches every resource of the class).
      AtomicRuleNode node;
      node.kind = AtomicRuleKind::kTriggering;
      node.type = cls;
      node.trigger.class_name = cls;
      inputs.push_back(add_node(std::move(node)));
    }
    // Intersect multiple inputs of the same variable with bare-equality
    // join rules (the paper's RuleE pattern: `a = b`).
    int current = inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      current = fold_pair(current, inputs[i]);
    }
    node_of_var[var] = current;
  }

  // ---- Consume join predicates, building inner join rules. ------------
  std::vector<PredicateExpr> remaining = std::move(join_preds);

  auto needed_after = [&](const std::string& var, size_t skip) {
    if (var == ast.register_variable) return true;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (i == skip) continue;
      if ((remaining[i].lhs.is_path() &&
           remaining[i].lhs.path.variable == var) ||
          (remaining[i].rhs.is_path() &&
           remaining[i].rhs.path.variable == var)) {
        return true;
      }
    }
    return false;
  };

  while (!remaining.empty()) {
    // Pick the first predicate where at least one side becomes
    // unnecessary afterwards, or failing that a bare-equality predicate
    // (whose output can stand for both sides).
    int pick = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const PredicateExpr& p = remaining[i];
      const std::string& lv = p.lhs.path.variable;
      const std::string& rv = p.rhs.path.variable;
      if (node_of_var.count(lv) == 0 || node_of_var.count(rv) == 0) {
        return Status::Unsupported(
            "predicate '" + p.ToString() +
            "' references a variable already consumed by a previous join; "
            "this join graph is not tree-shaped");
      }
      if (lv == rv || !needed_after(lv, i) || !needed_after(rv, i)) {
        // Self-joins (both sides the same variable) filter one input and
        // are always safe to apply.
        pick = static_cast<int>(i);
        break;
      }
      bool bare_eq = p.op == rdbms::CompareOp::kEq &&
                     p.lhs.path.IsBareVariable() &&
                     p.rhs.path.IsBareVariable();
      if (bare_eq && pick < 0) pick = static_cast<int>(i);
    }
    if (pick < 0) {
      return Status::Unsupported(
          "cyclic join graph: every remaining predicate needs both sides "
          "later (" + std::to_string(remaining.size()) + " predicates left)");
    }

    PredicateExpr pred = remaining[static_cast<size_t>(pick)];
    const std::string lvar = pred.lhs.path.variable;
    const std::string rvar = pred.rhs.path.variable;
    const bool lneeded = needed_after(lvar, static_cast<size_t>(pick));
    const bool rneeded = needed_after(rvar, static_cast<size_t>(pick));
    remaining.erase(remaining.begin() + pick);

    int lnode = node_of_var.at(lvar);
    int rnode = node_of_var.at(rvar);

    AtomicRuleNode node;
    node.kind = AtomicRuleKind::kJoin;
    node.left_child = lnode;
    node.right_child = rnode;
    node.join.left_class = out.atoms[lnode].type;
    node.join.right_class = out.atoms[rnode].type;
    node.join.lhs.property = pred.lhs.path.IsBareVariable()
                                 ? ""
                                 : pred.lhs.path.steps[0].property;
    node.join.rhs.property = pred.rhs.path.IsBareVariable()
                                 ? ""
                                 : pred.rhs.path.steps[0].property;
    node.join.op = pred.op;

    bool bare_eq = pred.op == rdbms::CompareOp::kEq &&
                   node.join.lhs.property.empty() &&
                   node.join.rhs.property.empty();
    int register_side;
    if (lvar == rvar) {
      register_side = 0;  // Self-join: the single input is forwarded.
    } else if (lneeded && rneeded) {
      if (!bare_eq) {
        return Status::Unsupported(
            "join '" + pred.ToString() +
            "' must forward both variables but is not a bare equality");
      }
      register_side = 0;
    } else if (lneeded) {
      register_side = 0;
    } else if (rneeded) {
      register_side = 1;
    } else {
      register_side = 0;
    }
    node.join.register_side = register_side;
    node.type = register_side == 0 ? node.join.left_class
                                   : node.join.right_class;

    int new_node = add_node(std::move(node));

    // Remap variables: everything that pointed at the registered child
    // follows the output; the other child's variables follow only across
    // a bare equality (their resources coincide with the output's),
    // otherwise they are consumed.
    int kept = register_side == 0 ? lnode : rnode;
    int other = register_side == 0 ? rnode : lnode;
    for (auto it = node_of_var.begin(); it != node_of_var.end();) {
      if (it->second == kept) {
        it->second = new_node;
        ++it;
      } else if (it->second == other) {
        if (bare_eq) {
          it->second = new_node;
          ++it;
        } else {
          it = node_of_var.erase(it);
        }
      } else {
        ++it;
      }
    }
  }

  // ---- Root and connectivity. ------------------------------------------
  auto root_it = node_of_var.find(ast.register_variable);
  if (root_it == node_of_var.end()) {
    return Status::Internal("register variable lost during decomposition");
  }
  out.root = root_it->second;
  for (const auto& [var, node] : node_of_var) {
    if (node != out.root) {
      return Status::Unsupported(
          "variable " + var +
          " is not connected to the register variable (cartesian products "
          "are not supported)");
    }
  }
  if (out.atoms[out.root].type !=
      normalized.variable_class.at(ast.register_variable)) {
    return Status::Internal("end rule type mismatch");
  }
  return out;
}

}  // namespace mdv::rules
