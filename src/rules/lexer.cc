#include "rules/lexer.h"

#include <cctype>
#include <charconv>

#include "common/string_util.h"

namespace mdv::rules {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeywordSearch:
      return "search";
    case TokenKind::kKeywordRegister:
      return "register";
    case TokenKind::kKeywordWhere:
      return "where";
    case TokenKind::kKeywordAnd:
      return "and";
    case TokenKind::kKeywordContains:
      return "contains";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kQuestion:
      return "?";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kEnd:
      return "<end>";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, size_t offset) {
    tokens.push_back(Token{kind, std::move(text), 0.0, offset});
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_' || input[i] == '#' || input[i] == '/')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string lower = ToLowerAscii(word);
      if (lower == "search") {
        push(TokenKind::kKeywordSearch, word, start);
      } else if (lower == "register") {
        push(TokenKind::kKeywordRegister, word, start);
      } else if (lower == "where") {
        push(TokenKind::kKeywordWhere, word, start);
      } else if (lower == "and") {
        push(TokenKind::kKeywordAnd, word, start);
      } else if (lower == "contains") {
        push(TokenKind::kKeywordContains, word, start);
      } else {
        push(TokenKind::kIdentifier, word, start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;  // Sign or first digit.
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.')) {
        // A '.' not followed by a digit ends the number (path after a
        // number is not valid anyway, but keep the lexer decoupled).
        if (input[i] == '.' &&
            (i + 1 >= input.size() ||
             !std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
          break;
        }
        ++i;
      }
      std::string lexeme(input.substr(start, i - start));
      double value = 0.0;
      auto [ptr, ec] =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), value);
      if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
        return Status::ParseError("malformed number '" + lexeme +
                                  "' at offset " + std::to_string(start));
      }
      Token t{TokenKind::kNumber, lexeme, value, start};
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '\'': {
        std::string text;
        ++i;
        bool closed = false;
        while (i < input.size()) {
          if (input[i] == '\'') {
            if (i + 1 < input.size() && input[i + 1] == '\'') {
              text += '\'';  // '' escapes a quote.
              i += 2;
              continue;
            }
            ++i;
            closed = true;
            break;
          }
          text += input[i++];
        }
        if (!closed) {
          return Status::ParseError("unterminated string at offset " +
                                    std::to_string(start));
        }
        push(TokenKind::kString, std::move(text), start);
        break;
      }
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        break;
      case '?':
        push(TokenKind::kQuestion, "?", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0.0, input.size()});
  return tokens;
}

}  // namespace mdv::rules
