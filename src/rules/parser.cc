#include "rules/parser.h"

#include "rules/lexer.h"

namespace mdv::rules {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<RuleAst> Parse() {
    RuleAst rule;
    MDV_RETURN_IF_ERROR(Expect(TokenKind::kKeywordSearch));
    MDV_RETURN_IF_ERROR(ParseSearchList(&rule));
    MDV_RETURN_IF_ERROR(Expect(TokenKind::kKeywordRegister));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected variable after 'register'");
    }
    rule.register_variable = Next().text;
    if (Peek().kind == TokenKind::kKeywordWhere) {
      Next();
      MDV_RETURN_IF_ERROR(ParseWhere(&rule));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return rule;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) + " (near '" +
                              Peek().text + "')");
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Err(std::string("expected '") + TokenKindToString(kind) + "'");
    }
    Next();
    return Status::OK();
  }

  Status ParseSearchList(RuleAst* rule) {
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Err("expected extension name in search clause");
      }
      SearchEntry entry;
      entry.extension = Next().text;
      if (Peek().kind != TokenKind::kIdentifier) {
        return Err("expected variable after extension " + entry.extension);
      }
      entry.variable = Next().text;
      rule->search.push_back(std::move(entry));
      if (Peek().kind == TokenKind::kComma) {
        Next();
        continue;
      }
      return Status::OK();
    }
  }

  Status ParseWhere(RuleAst* rule) {
    while (true) {
      PredicateExpr pred;
      MDV_RETURN_IF_ERROR(ParsePredicate(&pred));
      rule->where.push_back(std::move(pred));
      if (Peek().kind == TokenKind::kKeywordAnd) {
        Next();
        continue;
      }
      return Status::OK();
    }
  }

  Status ParsePredicate(PredicateExpr* pred) {
    MDV_RETURN_IF_ERROR(ParseOperand(&pred->lhs));
    switch (Peek().kind) {
      case TokenKind::kEq:
        pred->op = rdbms::CompareOp::kEq;
        break;
      case TokenKind::kNe:
        pred->op = rdbms::CompareOp::kNe;
        break;
      case TokenKind::kLt:
        pred->op = rdbms::CompareOp::kLt;
        break;
      case TokenKind::kLe:
        pred->op = rdbms::CompareOp::kLe;
        break;
      case TokenKind::kGt:
        pred->op = rdbms::CompareOp::kGt;
        break;
      case TokenKind::kGe:
        pred->op = rdbms::CompareOp::kGe;
        break;
      case TokenKind::kKeywordContains:
        pred->op = rdbms::CompareOp::kContains;
        break;
      default:
        return Err("expected comparison operator");
    }
    Next();
    MDV_RETURN_IF_ERROR(ParseOperand(&pred->rhs));
    return Status::OK();
  }

  Status ParseOperand(Operand* operand) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kString) {
      *operand = Operand::String(Next().text);
      return Status::OK();
    }
    if (t.kind == TokenKind::kNumber) {
      const Token& n = Next();
      *operand = Operand::Number(n.number, n.text);
      return Status::OK();
    }
    if (t.kind != TokenKind::kIdentifier) {
      return Err("expected operand (constant or path expression)");
    }
    PathExpr path;
    path.variable = Next().text;
    while (Peek().kind == TokenKind::kDot) {
      Next();
      if (Peek().kind != TokenKind::kIdentifier) {
        return Err("expected property name after '.'");
      }
      PathStep step;
      step.property = Next().text;
      if (Peek().kind == TokenKind::kQuestion) {
        Next();
        step.any = true;
      }
      path.steps.push_back(std::move(step));
    }
    *operand = Operand::Path(std::move(path));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<RuleAst> ParseRule(std::string_view text) {
  MDV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace mdv::rules
