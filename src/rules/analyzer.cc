#include "rules/analyzer.h"

namespace mdv::rules {

namespace {

/// Kind of an operand after resolution, for compatibility checking.
enum class OperandType { kResource, kLiteral, kStringConst, kNumberConst };

Result<OperandType> ResolveOperand(const Operand& operand,
                                   const AnalyzedRule& analyzed,
                                   const rdf::RdfSchema& schema) {
  switch (operand.kind) {
    case Operand::Kind::kString:
      return OperandType::kStringConst;
    case Operand::Kind::kNumber:
      return OperandType::kNumberConst;
    case Operand::Kind::kPath:
      break;
  }
  const PathExpr& path = operand.path;
  auto it = analyzed.variable_class.find(path.variable);
  if (it == analyzed.variable_class.end()) {
    return Status::InvalidArgument("undeclared variable " + path.variable);
  }
  if (path.IsBareVariable()) return OperandType::kResource;

  std::vector<std::string> names;
  names.reserve(path.steps.size());
  for (const PathStep& step : path.steps) names.push_back(step.property);
  MDV_ASSIGN_OR_RETURN(rdf::ResolvedPath resolved,
                       schema.ResolvePath(it->second, names));
  // `?` is only meaningful on set-valued properties (§2.3).
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (path.steps[i].any && !resolved.properties[i].set_valued) {
      return Status::InvalidArgument(
          "any operator '?' on non-set-valued property " +
          resolved.classes[i] + "." + path.steps[i].property);
    }
  }
  return resolved.final_property().kind == rdf::PropertyKind::kReference
             ? OperandType::kResource
             : OperandType::kLiteral;
}

bool IsOrderedOp(rdbms::CompareOp op) {
  return op == rdbms::CompareOp::kLt || op == rdbms::CompareOp::kLe ||
         op == rdbms::CompareOp::kGt || op == rdbms::CompareOp::kGe;
}

}  // namespace

Result<AnalyzedRule> AnalyzeRule(const RuleAst& rule,
                                 const rdf::RdfSchema& schema,
                                 const ExtensionResolver& resolver) {
  AnalyzedRule analyzed;
  analyzed.ast = rule;

  if (rule.search.empty()) {
    return Status::InvalidArgument("rule has an empty search clause");
  }
  for (const SearchEntry& entry : rule.search) {
    if (analyzed.variable_class.count(entry.variable) != 0) {
      return Status::InvalidArgument("duplicate variable " + entry.variable);
    }
    std::string class_name;
    bool is_rule = false;
    if (schema.HasClass(entry.extension)) {
      class_name = entry.extension;
    } else if (resolver) {
      std::optional<std::string> rule_type = resolver(entry.extension);
      if (!rule_type) {
        return Status::NotFound("extension " + entry.extension +
                                " is neither a schema class nor a "
                                "registered rule");
      }
      class_name = *rule_type;
      is_rule = true;
    } else {
      return Status::NotFound("unknown class " + entry.extension);
    }
    analyzed.variable_class[entry.variable] = class_name;
    analyzed.variable_extension[entry.variable] = entry.extension;
    analyzed.variable_is_rule_extension[entry.variable] = is_rule;
  }

  if (analyzed.variable_class.count(rule.register_variable) == 0) {
    return Status::InvalidArgument("register variable " +
                                   rule.register_variable +
                                   " is not declared in the search clause");
  }

  for (const PredicateExpr& pred : rule.where) {
    MDV_ASSIGN_OR_RETURN(OperandType lhs,
                         ResolveOperand(pred.lhs, analyzed, schema));
    MDV_ASSIGN_OR_RETURN(OperandType rhs,
                         ResolveOperand(pred.rhs, analyzed, schema));
    bool lhs_const =
        lhs == OperandType::kStringConst || lhs == OperandType::kNumberConst;
    bool rhs_const =
        rhs == OperandType::kStringConst || rhs == OperandType::kNumberConst;
    if (lhs_const && rhs_const) {
      return Status::InvalidArgument("predicate '" + pred.ToString() +
                                     "' does not reference a variable");
    }
    // Ordered comparisons against constants need numeric constants
    // (paper §3.3.4: "< <= > >= only on numerical constants").
    if (IsOrderedOp(pred.op)) {
      if (lhs == OperandType::kStringConst ||
          rhs == OperandType::kStringConst) {
        return Status::InvalidArgument(
            "ordered comparison with non-numeric constant in '" +
            pred.ToString() + "'");
      }
      if (lhs == OperandType::kResource || rhs == OperandType::kResource) {
        return Status::InvalidArgument(
            "ordered comparison on resource reference in '" +
            pred.ToString() + "'");
      }
    }
    if (pred.op == rdbms::CompareOp::kContains) {
      if (lhs == OperandType::kNumberConst ||
          rhs == OperandType::kNumberConst || lhs == OperandType::kResource ||
          rhs == OperandType::kResource) {
        return Status::InvalidArgument("contains needs string operands in '" +
                                       pred.ToString() + "'");
      }
      // `contains` is not symmetric, so a constant left-hand side cannot be
      // flipped into the canonical property-contains-constant form.
      if (lhs == OperandType::kStringConst) {
        return Status::Unsupported(
            "constant on the left of contains in '" + pred.ToString() +
            "'; write <path> contains '<text>'");
      }
    }
    // Resources compare only against resources or string constants
    // (URI references written as strings, e.g. OID rules).
    if ((lhs == OperandType::kResource &&
         rhs == OperandType::kNumberConst) ||
        (rhs == OperandType::kResource &&
         lhs == OperandType::kNumberConst)) {
      return Status::InvalidArgument(
          "resource compared against a number in '" + pred.ToString() + "'");
    }
  }
  return analyzed;
}

}  // namespace mdv::rules
