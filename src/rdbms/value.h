#ifndef MDV_RDBMS_VALUE_H_
#define MDV_RDBMS_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <variant>

namespace mdv::rdbms {

/// Column data types supported by the embedded engine. The MDV filter
/// stores all constants as strings and reconverts them when comparing
/// (paper §3.3.4), so kString plus numeric coercion covers its needs; the
/// numeric types exist for general use and for the synthetic workloads.
enum class ColumnType { kInt64, kDouble, kString };

const char* ColumnTypeToString(ColumnType type);

/// A dynamically typed cell value: NULL, INT64, DOUBLE, or STRING.
///
/// Values order NULL first, then numerics (int and double compare
/// numerically against each other), then strings. This total order is what
/// the B-tree indexes use.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Requires is_int().
  int64_t as_int() const { return std::get<int64_t>(data_); }
  /// Requires is_double().
  double as_double() const { return std::get<double>(data_); }
  /// Requires is_string().
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: int widened to double. Requires is_numeric().
  double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Parses a string value as a number if possible (used when the filter
  /// reconverts constants stored as strings, paper §3.3.4). Numeric values
  /// are returned as-is; NULL and non-numeric strings yield nullopt.
  std::optional<double> TryNumeric() const;

  /// Renders the value for display; NULL renders as "NULL".
  std::string ToString() const;

  /// Three-way comparison in the canonical order (NULL < numeric < string).
  /// Ints and doubles compare numerically against each other.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator== (int 3 and double 3.0 hash equal).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueLess {
  bool operator()(const Value& a, const Value& b) const { return a < b; }
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_VALUE_H_
