#include "rdbms/schema.h"

namespace mdv::rdbms {

TableSchema::TableSchema(std::string table_name, std::vector<ColumnDef> columns)
    : table_name_(std::move(table_name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_by_name_.emplace(columns_[i].name, i);
  }
}

std::optional<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) return std::nullopt;
  return it->second;
}

std::string TableSchema::ToString() const {
  std::string out = table_name_;
  out += "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ColumnTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace mdv::rdbms
