#ifndef MDV_RDBMS_SCHEMA_H_
#define MDV_RDBMS_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdbms/value.h"

namespace mdv::rdbms {

/// Definition of one column of a table.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
  bool nullable = true;
};

/// Immutable description of a table: its name and ordered columns.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnDef> columns);

  const std::string& table_name() const { return table_name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of the column named `name`, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// "name(col1 TYPE, col2 TYPE, ...)" — for diagnostics.
  std::string ToString() const;

 private:
  std::string table_name_;
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_by_name_;
};

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_SCHEMA_H_
