#include "rdbms/persistence.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/file_util.h"
#include "common/string_util.h"
#include "rdbms/table.h"

namespace mdv::rdbms {

namespace {

constexpr char kMagic[] = "MDVDB1";

std::string EscapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case ' ':
        out += "\\s";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 's':
        out += ' ';
        break;
      default:
        out += s[i];
    }
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  if (v.is_null()) return "N";
  if (v.is_int()) return "I " + std::to_string(v.as_int());
  if (v.is_double()) {
    std::ostringstream os;
    os.precision(17);
    os << "D " << v.as_double();
    return os.str();
  }
  return "S " + EscapeText(v.as_string());
}

Result<Value> DecodeValue(const std::string& line) {
  if (line == "N") return Value();
  if (line.size() < 2 || line[1] != ' ') {
    return Status::ParseError("malformed value line: " + line);
  }
  std::string payload = line.substr(2);
  switch (line[0]) {
    case 'I': {
      int64_t parsed = 0;
      auto [p, ec] = std::from_chars(payload.data(),
                                     payload.data() + payload.size(), parsed);
      if (ec != std::errc() || p != payload.data() + payload.size()) {
        return Status::ParseError("bad int: " + payload);
      }
      return Value(parsed);
    }
    case 'D': {
      double parsed = 0.0;
      auto [p, ec] = std::from_chars(payload.data(),
                                     payload.data() + payload.size(), parsed);
      if (ec != std::errc() || p != payload.data() + payload.size()) {
        return Status::ParseError("bad double: " + payload);
      }
      return Value(parsed);
    }
    case 'S':
      return Value(UnescapeText(payload));
    default:
      return Status::ParseError("unknown value tag in: " + line);
  }
}

}  // namespace

Status SaveDatabase(const Database& db, std::ostream& out) {
  out << kMagic << "\n";
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name);
    const TableSchema& schema = table->schema();
    out << "TABLE " << EscapeText(name) << " " << schema.num_columns()
        << " " << table->NumRows() << "\n";
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const ColumnDef& col = schema.column(i);
      out << "COL " << EscapeText(col.name) << " "
          << ColumnTypeToString(col.type) << " " << (col.nullable ? 1 : 0)
          << "\n";
      if (table->HasIndex(i)) {
        // Kind is not observable through Table's public API per column;
        // persist as BTREE (lossless for correctness, both kinds answer
        // the same queries). See rdbms/index.h.
        out << "INDEX " << EscapeText(col.name) << " BTREE\n";
      }
    }
    table->Scan([&](RowId, const Row& row) {
      for (const Value& v : row) {
        out << "V " << EncodeValue(v) << "\n";
      }
    });
  }
  out << "END\n";
  if (!out.good()) return Status::Internal("write failure");
  return Status::OK();
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  // Serialize to memory first, then replace the file atomically — a
  // crash mid-save must leave the previous image intact, not a torn
  // half-written one (a torn image is what LoadDatabase's hardening
  // protects against, but losing the good copy is worse).
  std::ostringstream out;
  MDV_RETURN_IF_ERROR(SaveDatabase(db, out));
  return WriteFileAtomic(path, out.str());
}

Result<std::unique_ptr<Database>> LoadDatabase(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::ParseError("missing database header");
  }
  auto db = std::make_unique<Database>();
  Table* table = nullptr;
  size_t pending_columns = 0;
  size_t pending_rows = 0;
  std::string table_name;
  std::vector<ColumnDef> columns;
  std::vector<std::pair<std::string, IndexKind>> indexes;
  Row row;

  auto flush_table_header = [&]() -> Status {
    if (table != nullptr || table_name.empty()) return Status::OK();
    if (columns.size() != pending_columns) {
      return Status::ParseError("column count mismatch for " + table_name);
    }
    MDV_ASSIGN_OR_RETURN(table,
                         db->CreateTable(TableSchema(table_name, columns)));
    for (const auto& [col, kind] : indexes) {
      MDV_RETURN_IF_ERROR(table->CreateIndex(col, kind));
    }
    return Status::OK();
  };

  while (std::getline(in, line)) {
    if (line == "END") {
      MDV_RETURN_IF_ERROR(flush_table_header());
      if (pending_rows != 0 || !row.empty()) {
        return Status::ParseError("truncated rows for table " + table_name);
      }
      return db;
    }
    if (StartsWith(line, "TABLE ")) {
      MDV_RETURN_IF_ERROR(flush_table_header());
      if (pending_rows != 0 || !row.empty()) {
        return Status::ParseError("truncated rows for table " + table_name);
      }
      std::istringstream ss(line.substr(6));
      std::string escaped;
      // Parse counts signed so a corrupted "-1" is rejected instead of
      // wrapping to SIZE_MAX.
      long long column_count = 0;
      long long row_count = 0;
      if (!(ss >> escaped >> column_count >> row_count) || column_count < 0 ||
          row_count < 0) {
        return Status::ParseError("malformed TABLE line: " + line);
      }
      pending_columns = static_cast<size_t>(column_count);
      pending_rows = static_cast<size_t>(row_count);
      table_name = UnescapeText(escaped);
      columns.clear();
      indexes.clear();
      table = nullptr;
      row.clear();
      continue;
    }
    if (StartsWith(line, "COL ")) {
      std::istringstream ss(line.substr(4));
      std::string escaped, type_name;
      int nullable = 1;
      if (!(ss >> escaped >> type_name >> nullable)) {
        return Status::ParseError("malformed COL line: " + line);
      }
      ColumnDef def;
      def.name = UnescapeText(escaped);
      def.nullable = nullable != 0;
      if (type_name == "INT64") {
        def.type = ColumnType::kInt64;
      } else if (type_name == "DOUBLE") {
        def.type = ColumnType::kDouble;
      } else if (type_name == "STRING") {
        def.type = ColumnType::kString;
      } else {
        return Status::ParseError("unknown column type " + type_name);
      }
      columns.push_back(std::move(def));
      continue;
    }
    if (StartsWith(line, "INDEX ")) {
      std::istringstream ss(line.substr(6));
      std::string escaped, kind_name;
      if (!(ss >> escaped >> kind_name)) {
        return Status::ParseError("malformed INDEX line: " + line);
      }
      indexes.emplace_back(UnescapeText(escaped),
                           kind_name == "HASH" ? IndexKind::kHash
                                               : IndexKind::kBTree);
      continue;
    }
    if (StartsWith(line, "V ")) {
      MDV_RETURN_IF_ERROR(flush_table_header());
      if (table == nullptr) {
        return Status::ParseError("row value outside a table");
      }
      MDV_ASSIGN_OR_RETURN(Value v, DecodeValue(line.substr(2)));
      row.push_back(std::move(v));
      if (row.size() == table->schema().num_columns()) {
        if (pending_rows == 0) {
          return Status::ParseError("too many rows for " + table_name);
        }
        MDV_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row)));
        (void)id;
        row.clear();
        --pending_rows;
      }
      continue;
    }
    if (line.empty()) continue;
    return Status::ParseError("unrecognized line: " + line);
  }
  return Status::ParseError("missing END marker");
}

Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadDatabase(in);
}

}  // namespace mdv::rdbms
