#include "rdbms/sql.h"
#include <cmath>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <set>

#include "common/string_util.h"
#include "rdbms/predicate.h"
#include "rdbms/table.h"

namespace mdv::rdbms {

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class SqlTokenKind {
  kIdentifier,
  kString,
  kNumber,
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct SqlToken {
  SqlTokenKind kind = SqlTokenKind::kEnd;
  std::string text;   // Identifier (upper-cased copy in `upper`), string
                      // contents, or number lexeme.
  std::string upper;  // For keyword matching.
  double number = 0.0;
  size_t offset = 0;
};

Result<std::vector<SqlToken>> SqlTokenize(std::string_view input) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  auto push = [&](SqlTokenKind kind, std::string text, size_t offset) {
    SqlToken t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      SqlToken t;
      t.kind = SqlTokenKind::kIdentifier;
      t.text = std::string(input.substr(start, i - start));
      t.upper = ToLowerAscii(t.text);
      for (char& ch : t.upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.')) {
        ++i;
      }
      std::string lexeme(input.substr(start, i - start));
      SqlToken t;
      t.kind = SqlTokenKind::kNumber;
      t.text = lexeme;
      t.offset = start;
      auto [ptr, ec] =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(),
                          t.number);
      if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
        return Status::ParseError("malformed number '" + lexeme +
                                  "' at offset " + std::to_string(start));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '\'': {
        std::string text;
        ++i;
        bool closed = false;
        while (i < input.size()) {
          if (input[i] == '\'') {
            if (i + 1 < input.size() && input[i + 1] == '\'') {
              text += '\'';
              i += 2;
              continue;
            }
            ++i;
            closed = true;
            break;
          }
          text += input[i++];
        }
        if (!closed) {
          return Status::ParseError("unterminated string at offset " +
                                    std::to_string(start));
        }
        push(SqlTokenKind::kString, std::move(text), start);
        break;
      }
      case ',':
        push(SqlTokenKind::kComma, ",", start);
        ++i;
        break;
      case '.':
        push(SqlTokenKind::kDot, ".", start);
        ++i;
        break;
      case '*':
        push(SqlTokenKind::kStar, "*", start);
        ++i;
        break;
      case '(':
        push(SqlTokenKind::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(SqlTokenKind::kRParen, ")", start);
        ++i;
        break;
      case '=':
        push(SqlTokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(SqlTokenKind::kNe, "!=", start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(SqlTokenKind::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '>') {
          push(SqlTokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(SqlTokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(SqlTokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(SqlTokenKind::kGt, ">", start);
          ++i;
        }
        break;
      case ';':
        ++i;  // Statement terminator, ignored.
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back(SqlToken{});
  return tokens;
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

struct SqlOperand {
  enum class Kind { kColumn, kString, kNumber } kind = Kind::kColumn;
  std::string qualifier;  // Table alias; may be empty.
  std::string column;
  std::string text;
  double number = 0.0;
};

struct SqlCondition {
  SqlOperand lhs;
  CompareOp op = CompareOp::kEq;
  SqlOperand rhs;
};

struct TableRef {
  std::string table;
  std::string alias;  // Defaults to the table name.
};

struct SelectStatement {
  bool star = false;
  bool count = false;  // SELECT COUNT(*).
  std::vector<SqlOperand> columns;  // kColumn operands.
  std::vector<TableRef> from;
  std::vector<SqlCondition> where;
  std::vector<std::pair<SqlOperand, bool>> order_by;  // (column, descending).
  int64_t limit = -1;  // -1 = no limit.
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class SqlParser {
 public:
  explicit SqlParser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<SqlResult> Execute(Database* db) {
    const SqlToken& head = Peek();
    if (head.kind != SqlTokenKind::kIdentifier) {
      return Err("expected a statement keyword");
    }
    if (head.upper == "SELECT") return ExecuteSelect(db);
    if (head.upper == "CREATE") return ExecuteCreate(db);
    if (head.upper == "DROP") return ExecuteDrop(db);
    if (head.upper == "INSERT") return ExecuteInsert(db);
    if (head.upper == "DELETE") return ExecuteDelete(db);
    if (head.upper == "UPDATE") return ExecuteUpdate(db);
    return Err("unknown statement '" + head.text + "'");
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const SqlToken& Next() { return tokens_[pos_++]; }
  bool AtKeyword(const char* kw) const {
    return Peek().kind == SqlTokenKind::kIdentifier && Peek().upper == kw;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AtKeyword(kw)) return Err(std::string("expected ") + kw);
    Next();
    return Status::OK();
  }
  Status Expect(SqlTokenKind kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected ") + what);
    Next();
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) + " (near '" +
                              Peek().text + "')");
  }
  Status AtEndOrError() {
    if (Peek().kind != SqlTokenKind::kEnd) return Err("trailing input");
    return Status::OK();
  }

  Result<SqlOperand> ParseOperand() {
    const SqlToken& t = Peek();
    SqlOperand op;
    if (t.kind == SqlTokenKind::kString) {
      op.kind = SqlOperand::Kind::kString;
      op.text = Next().text;
      return op;
    }
    if (t.kind == SqlTokenKind::kNumber) {
      op.kind = SqlOperand::Kind::kNumber;
      const SqlToken& n = Next();
      op.number = n.number;
      op.text = n.text;
      return op;
    }
    if (t.kind != SqlTokenKind::kIdentifier) {
      return Err("expected operand");
    }
    op.kind = SqlOperand::Kind::kColumn;
    op.column = Next().text;
    if (Peek().kind == SqlTokenKind::kDot) {
      Next();
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected column after '.'");
      }
      op.qualifier = op.column;
      op.column = Next().text;
    }
    return op;
  }

  Result<std::vector<SqlCondition>> ParseWhere() {
    std::vector<SqlCondition> conditions;
    if (!AtKeyword("WHERE")) return conditions;
    Next();
    while (true) {
      SqlCondition cond;
      MDV_ASSIGN_OR_RETURN(cond.lhs, ParseOperand());
      switch (Peek().kind) {
        case SqlTokenKind::kEq:
          cond.op = CompareOp::kEq;
          break;
        case SqlTokenKind::kNe:
          cond.op = CompareOp::kNe;
          break;
        case SqlTokenKind::kLt:
          cond.op = CompareOp::kLt;
          break;
        case SqlTokenKind::kLe:
          cond.op = CompareOp::kLe;
          break;
        case SqlTokenKind::kGt:
          cond.op = CompareOp::kGt;
          break;
        case SqlTokenKind::kGe:
          cond.op = CompareOp::kGe;
          break;
        case SqlTokenKind::kIdentifier:
          if (Peek().upper == "CONTAINS") {
            cond.op = CompareOp::kContains;
            break;
          }
          [[fallthrough]];
        default:
          return Err("expected comparison operator");
      }
      Next();
      MDV_ASSIGN_OR_RETURN(cond.rhs, ParseOperand());
      conditions.push_back(std::move(cond));
      if (AtKeyword("AND")) {
        Next();
        continue;
      }
      return conditions;
    }
  }

  Result<Value> OperandConstant(const SqlOperand& op) {
    switch (op.kind) {
      case SqlOperand::Kind::kString:
        return Value(op.text);
      case SqlOperand::Kind::kNumber: {
        double intpart = 0.0;
        if (std::modf(op.number, &intpart) == 0.0 &&
            op.text.find('.') == std::string::npos) {
          return Value(static_cast<int64_t>(op.number));
        }
        return Value(op.number);
      }
      case SqlOperand::Kind::kColumn:
        return Status::InvalidArgument("expected a constant, found column " +
                                       op.column);
    }
    return Status::Internal("unreachable");
  }

  // ---- SELECT ---------------------------------------------------------

  Result<SqlResult> ExecuteSelect(Database* db) {
    Next();  // SELECT
    SelectStatement stmt;
    if (Peek().kind == SqlTokenKind::kStar) {
      Next();
      stmt.star = true;
    } else if (AtKeyword("COUNT")) {
      Next();
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kStar, "'*'"));
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      stmt.count = true;
    } else {
      while (true) {
        MDV_ASSIGN_OR_RETURN(SqlOperand col, ParseOperand());
        if (col.kind != SqlOperand::Kind::kColumn) {
          return Err("select list must contain column references");
        }
        stmt.columns.push_back(std::move(col));
        if (Peek().kind == SqlTokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
    }
    MDV_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected table name");
      }
      TableRef ref;
      ref.table = Next().text;
      ref.alias = ref.table;
      if (Peek().kind == SqlTokenKind::kIdentifier && !AtKeyword("WHERE") &&
          !AtKeyword("ORDER") && !AtKeyword("LIMIT")) {
        if (AtKeyword("AS")) Next();
        if (Peek().kind != SqlTokenKind::kIdentifier) {
          return Err("expected alias");
        }
        ref.alias = Next().text;
      }
      stmt.from.push_back(std::move(ref));
      if (Peek().kind == SqlTokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    MDV_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    if (AtKeyword("ORDER")) {
      Next();
      MDV_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        MDV_ASSIGN_OR_RETURN(SqlOperand col, ParseOperand());
        if (col.kind != SqlOperand::Kind::kColumn) {
          return Err("ORDER BY expects column references");
        }
        bool descending = false;
        if (AtKeyword("DESC")) {
          Next();
          descending = true;
        } else if (AtKeyword("ASC")) {
          Next();
        }
        stmt.order_by.emplace_back(std::move(col), descending);
        if (Peek().kind == SqlTokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
    }
    if (AtKeyword("LIMIT")) {
      Next();
      if (Peek().kind != SqlTokenKind::kNumber) {
        return Err("LIMIT expects a number");
      }
      stmt.limit = static_cast<int64_t>(Next().number);
      if (stmt.limit < 0) return Err("LIMIT must be non-negative");
    }
    MDV_RETURN_IF_ERROR(AtEndOrError());
    return RunSelect(db, stmt);
  }

  /// Resolves `op` (a column) to the alias owning it; errors if the
  /// column is ambiguous or unknown.
  Result<std::string> ResolveQualifier(const SqlOperand& op, Database* db,
                                       const std::vector<TableRef>& from) {
    if (!op.qualifier.empty()) {
      for (const TableRef& ref : from) {
        if (ref.alias == op.qualifier) return op.qualifier;
      }
      return Status::NotFound("alias " + op.qualifier);
    }
    std::string found;
    for (const TableRef& ref : from) {
      const Table* table = db->GetTable(ref.table);
      if (table == nullptr) return Status::NotFound("table " + ref.table);
      if (table->schema().ColumnIndex(op.column)) {
        if (!found.empty()) {
          return Status::InvalidArgument("ambiguous column " + op.column);
        }
        found = ref.alias;
      }
    }
    if (found.empty()) return Status::NotFound("column " + op.column);
    return found;
  }

  Result<SqlResult> RunSelect(Database* db, SelectStatement& stmt) {
    // Classify conditions: single-table (pushed into the scan when they
    // compare against a constant), cross-table equality (hash join), and
    // residual (evaluated after the joins).
    struct Qualified {
      SqlCondition cond;
      std::string lhs_alias;  // Empty when lhs is a constant.
      std::string rhs_alias;
    };
    std::vector<Qualified> qualified;
    for (SqlCondition& cond : stmt.where) {
      Qualified q;
      if (cond.lhs.kind == SqlOperand::Kind::kColumn) {
        MDV_ASSIGN_OR_RETURN(q.lhs_alias,
                             ResolveQualifier(cond.lhs, db, stmt.from));
      }
      if (cond.rhs.kind == SqlOperand::Kind::kColumn) {
        MDV_ASSIGN_OR_RETURN(q.rhs_alias,
                             ResolveQualifier(cond.rhs, db, stmt.from));
      }
      q.cond = std::move(cond);
      qualified.push_back(std::move(q));
    }

    // Scan each table with its pushed-down constant conditions.
    std::map<std::string, RowSet> relations;  // alias → rows.
    for (const TableRef& ref : stmt.from) {
      const Table* table = db->GetTable(ref.table);
      if (table == nullptr) return Status::NotFound("table " + ref.table);
      std::vector<ScanCondition> pushed;
      for (const Qualified& q : qualified) {
        const SqlCondition& c = q.cond;
        bool lhs_here = c.lhs.kind == SqlOperand::Kind::kColumn &&
                        q.lhs_alias == ref.alias;
        bool rhs_const = c.rhs.kind != SqlOperand::Kind::kColumn;
        if (lhs_here && rhs_const) {
          auto col = table->schema().ColumnIndex(c.lhs.column);
          if (!col) return Status::NotFound("column " + c.lhs.column);
          MDV_ASSIGN_OR_RETURN(Value constant, OperandConstant(c.rhs));
          pushed.push_back(ScanCondition{*col, c.op, std::move(constant)});
        }
        bool rhs_here = c.rhs.kind == SqlOperand::Kind::kColumn &&
                        q.rhs_alias == ref.alias;
        bool lhs_const = c.lhs.kind != SqlOperand::Kind::kColumn;
        if (rhs_here && lhs_const) {
          auto col = table->schema().ColumnIndex(c.rhs.column);
          if (!col) return Status::NotFound("column " + c.rhs.column);
          MDV_ASSIGN_OR_RETURN(Value constant, OperandConstant(c.lhs));
          pushed.push_back(
              ScanCondition{*col, FlipCompareOp(c.op), std::move(constant)});
        }
      }
      relations.emplace(ref.alias, FromTable(*table, pushed, ref.alias));
    }

    // Join order: left-to-right over the FROM list, applying every
    // cross-table equality condition between joined aliases as a hash
    // join; other cross-table conditions become residual filters.
    RowSet combined = relations.at(stmt.from[0].alias);
    std::set<std::string> joined{stmt.from[0].alias};
    for (size_t i = 1; i < stmt.from.size(); ++i) {
      const std::string& alias = stmt.from[i].alias;
      const RowSet& right = relations.at(alias);
      // Find one equality join condition between `combined` and `right`.
      int join_condition = -1;
      for (size_t k = 0; k < qualified.size(); ++k) {
        const Qualified& q = qualified[k];
        if (q.cond.op != CompareOp::kEq) continue;
        if (q.lhs_alias.empty() || q.rhs_alias.empty()) continue;
        bool forward = joined.count(q.lhs_alias) != 0 && q.rhs_alias == alias;
        bool backward = joined.count(q.rhs_alias) != 0 && q.lhs_alias == alias;
        if (forward || backward) {
          join_condition = static_cast<int>(k);
          break;
        }
      }
      if (join_condition >= 0) {
        const Qualified& q = qualified[static_cast<size_t>(join_condition)];
        bool lhs_in_combined = joined.count(q.lhs_alias) != 0;
        const SqlOperand& left_op = lhs_in_combined ? q.cond.lhs : q.cond.rhs;
        const SqlOperand& right_op = lhs_in_combined ? q.cond.rhs : q.cond.lhs;
        const std::string& left_alias =
            lhs_in_combined ? q.lhs_alias : q.rhs_alias;
        int lcol = combined.ColumnIndex(left_alias + "." + left_op.column);
        int rcol = right.ColumnIndex(alias + "." + right_op.column);
        if (lcol < 0 || rcol < 0) {
          return Status::Internal("join column resolution failed");
        }
        combined = HashJoin(combined, static_cast<size_t>(lcol), right,
                            static_cast<size_t>(rcol));
      } else {
        // Cartesian product via an always-true nested-loop pairing.
        RowSet product;
        product.columns = combined.columns;
        product.columns.insert(product.columns.end(), right.columns.begin(),
                               right.columns.end());
        for (const Row& l : combined.rows) {
          for (const Row& r : right.rows) {
            Row row = l;
            row.insert(row.end(), r.begin(), r.end());
            product.rows.push_back(std::move(row));
          }
        }
        combined = std::move(product);
      }
      joined.insert(alias);
    }

    // Residual filter: every condition re-checked on the joined relation
    // (cheap; pushed-down conditions are already satisfied).
    auto column_of = [&](const SqlOperand& op,
                         const std::string& alias) -> int {
      return combined.ColumnIndex(alias + "." + op.column);
    };
    std::vector<PredicatePtr> residual;
    for (const Qualified& q : qualified) {
      const SqlCondition& c = q.cond;
      bool lhs_col = c.lhs.kind == SqlOperand::Kind::kColumn;
      bool rhs_col = c.rhs.kind == SqlOperand::Kind::kColumn;
      if (lhs_col && rhs_col) {
        int l = column_of(c.lhs, q.lhs_alias);
        int r = column_of(c.rhs, q.rhs_alias);
        if (l < 0 || r < 0) return Status::Internal("column lost in join");
        residual.push_back(ColumnColumnCompare(static_cast<size_t>(l), c.op,
                                               static_cast<size_t>(r)));
      } else if (lhs_col) {
        int l = column_of(c.lhs, q.lhs_alias);
        if (l < 0) return Status::Internal("column lost in join");
        MDV_ASSIGN_OR_RETURN(Value constant, OperandConstant(c.rhs));
        residual.push_back(
            ColumnCompare(static_cast<size_t>(l), c.op, std::move(constant)));
      } else {
        int r = column_of(c.rhs, q.rhs_alias);
        if (r < 0) return Status::Internal("column lost in join");
        MDV_ASSIGN_OR_RETURN(Value constant, OperandConstant(c.lhs));
        residual.push_back(ColumnCompare(static_cast<size_t>(r),
                                         FlipCompareOp(c.op),
                                         std::move(constant)));
      }
    }
    if (!residual.empty()) {
      combined = Select(combined, *And(std::move(residual)));
    }

    // ORDER BY: stable sort over the (qualified) sort columns.
    if (!stmt.order_by.empty()) {
      std::vector<std::pair<size_t, bool>> keys;
      for (const auto& [col, descending] : stmt.order_by) {
        MDV_ASSIGN_OR_RETURN(std::string alias,
                             ResolveQualifier(col, db, stmt.from));
        int idx = combined.ColumnIndex(alias + "." + col.column);
        if (idx < 0) return Status::NotFound("column " + col.column);
        keys.emplace_back(static_cast<size_t>(idx), descending);
      }
      std::stable_sort(combined.rows.begin(), combined.rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (const auto& [idx, descending] : keys) {
                           int cmp = a[idx].Compare(b[idx]);
                           if (cmp != 0) return descending ? cmp > 0 : cmp < 0;
                         }
                         return false;
                       });
    }
    if (stmt.limit >= 0 &&
        combined.rows.size() > static_cast<size_t>(stmt.limit)) {
      combined.rows.resize(static_cast<size_t>(stmt.limit));
    }

    // Projection.
    SqlResult out;
    out.is_query = true;
    if (stmt.count) {
      out.rows.columns = {"count"};
      out.rows.rows = {
          Row{Value(static_cast<int64_t>(combined.rows.size()))}};
      return out;
    }
    if (stmt.star) {
      out.rows = std::move(combined);
      return out;
    }
    std::vector<size_t> projection;
    for (const SqlOperand& col : stmt.columns) {
      MDV_ASSIGN_OR_RETURN(std::string alias,
                           ResolveQualifier(col, db, stmt.from));
      int idx = combined.ColumnIndex(alias + "." + col.column);
      if (idx < 0) return Status::NotFound("column " + col.column);
      projection.push_back(static_cast<size_t>(idx));
    }
    out.rows = Project(combined, projection);
    return out;
  }

  // ---- DDL / DML ------------------------------------------------------

  Result<SqlResult> ExecuteCreate(Database* db) {
    Next();  // CREATE
    IndexKind index_kind = IndexKind::kBTree;
    bool is_index = false;
    if (AtKeyword("HASH")) {
      Next();
      index_kind = IndexKind::kHash;
      is_index = true;
      MDV_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    } else if (AtKeyword("BTREE")) {
      Next();
      is_index = true;
      MDV_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    } else if (AtKeyword("INDEX")) {
      Next();
      is_index = true;
    } else {
      MDV_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    }

    if (is_index) {
      MDV_RETURN_IF_ERROR(ExpectKeyword("ON"));
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected table name");
      }
      std::string table_name = Next().text;
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected column name");
      }
      std::string column = Next().text;
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      MDV_RETURN_IF_ERROR(AtEndOrError());
      Table* table = db->GetTable(table_name);
      if (table == nullptr) return Status::NotFound("table " + table_name);
      MDV_RETURN_IF_ERROR(table->CreateIndex(column, index_kind));
      return SqlResult{};
    }

    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Err("expected table name");
    }
    std::string table_name = Next().text;
    MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
    std::vector<ColumnDef> columns;
    while (true) {
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected column name");
      }
      ColumnDef def;
      def.name = Next().text;
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected column type");
      }
      std::string type = Next().upper;
      if (type == "INT" || type == "INT64" || type == "INTEGER") {
        def.type = ColumnType::kInt64;
      } else if (type == "DOUBLE" || type == "FLOAT" || type == "REAL") {
        def.type = ColumnType::kDouble;
      } else if (type == "STRING" || type == "TEXT" || type == "VARCHAR") {
        def.type = ColumnType::kString;
      } else {
        return Err("unknown type " + type);
      }
      columns.push_back(std::move(def));
      if (Peek().kind == SqlTokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
    MDV_RETURN_IF_ERROR(AtEndOrError());
    MDV_ASSIGN_OR_RETURN(Table * created,
                         db->CreateTable(TableSchema(table_name, columns)));
    (void)created;
    return SqlResult{};
  }

  Result<SqlResult> ExecuteDrop(Database* db) {
    Next();  // DROP
    MDV_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Err("expected table name");
    }
    std::string name = Next().text;
    MDV_RETURN_IF_ERROR(AtEndOrError());
    MDV_RETURN_IF_ERROR(db->DropTable(name));
    return SqlResult{};
  }

  Result<SqlResult> ExecuteInsert(Database* db) {
    Next();  // INSERT
    MDV_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Err("expected table name");
    }
    std::string name = Next().text;
    MDV_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    Table* table = db->GetTable(name);
    if (table == nullptr) return Status::NotFound("table " + name);

    SqlResult result;
    while (true) {
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
      Row row;
      while (true) {
        if (AtKeyword("NULL")) {
          Next();
          row.push_back(Value());
        } else {
          MDV_ASSIGN_OR_RETURN(SqlOperand op, ParseOperand());
          MDV_ASSIGN_OR_RETURN(Value v, OperandConstant(op));
          row.push_back(std::move(v));
        }
        if (Peek().kind == SqlTokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      MDV_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row)));
      (void)id;
      ++result.affected_rows;
      if (Peek().kind == SqlTokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    MDV_RETURN_IF_ERROR(AtEndOrError());
    return result;
  }

  Result<std::vector<ScanCondition>> WhereToScanConditions(
      const Table& table, const std::vector<SqlCondition>& where) {
    std::vector<ScanCondition> out;
    for (const SqlCondition& cond : where) {
      const SqlOperand* column = nullptr;
      const SqlOperand* constant = nullptr;
      CompareOp op = cond.op;
      if (cond.lhs.kind == SqlOperand::Kind::kColumn &&
          cond.rhs.kind != SqlOperand::Kind::kColumn) {
        column = &cond.lhs;
        constant = &cond.rhs;
      } else if (cond.rhs.kind == SqlOperand::Kind::kColumn &&
                 cond.lhs.kind != SqlOperand::Kind::kColumn) {
        column = &cond.rhs;
        constant = &cond.lhs;
        op = FlipCompareOp(op);
      } else {
        return Status::Unsupported(
            "DML WHERE clauses support column-vs-constant conditions only");
      }
      auto col = table.schema().ColumnIndex(column->column);
      if (!col) return Status::NotFound("column " + column->column);
      MDV_ASSIGN_OR_RETURN(Value v, OperandConstant(*constant));
      out.push_back(ScanCondition{*col, op, std::move(v)});
    }
    return out;
  }

  Result<SqlResult> ExecuteDelete(Database* db) {
    Next();  // DELETE
    MDV_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Err("expected table name");
    }
    std::string name = Next().text;
    MDV_ASSIGN_OR_RETURN(std::vector<SqlCondition> where, ParseWhere());
    MDV_RETURN_IF_ERROR(AtEndOrError());
    Table* table = db->GetTable(name);
    if (table == nullptr) return Status::NotFound("table " + name);
    MDV_ASSIGN_OR_RETURN(std::vector<ScanCondition> conditions,
                         WhereToScanConditions(*table, where));
    SqlResult result;
    result.affected_rows = table->DeleteWhere(conditions);
    return result;
  }

  Result<SqlResult> ExecuteUpdate(Database* db) {
    Next();  // UPDATE
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Err("expected table name");
    }
    std::string name = Next().text;
    MDV_RETURN_IF_ERROR(ExpectKeyword("SET"));
    Table* table = db->GetTable(name);
    if (table == nullptr) return Status::NotFound("table " + name);

    std::vector<std::pair<size_t, Value>> assignments;
    while (true) {
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Err("expected column name");
      }
      std::string column = Next().text;
      auto col = table->schema().ColumnIndex(column);
      if (!col) return Status::NotFound("column " + column);
      MDV_RETURN_IF_ERROR(Expect(SqlTokenKind::kEq, "'='"));
      if (AtKeyword("NULL")) {
        Next();
        assignments.emplace_back(*col, Value());
      } else {
        MDV_ASSIGN_OR_RETURN(SqlOperand op, ParseOperand());
        MDV_ASSIGN_OR_RETURN(Value v, OperandConstant(op));
        assignments.emplace_back(*col, std::move(v));
      }
      if (Peek().kind == SqlTokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    MDV_ASSIGN_OR_RETURN(std::vector<SqlCondition> where, ParseWhere());
    MDV_RETURN_IF_ERROR(AtEndOrError());
    MDV_ASSIGN_OR_RETURN(std::vector<ScanCondition> conditions,
                         WhereToScanConditions(*table, where));

    SqlResult result;
    for (RowId id : table->SelectRowIds(conditions)) {
      Row row = *table->Get(id);
      for (const auto& [col, value] : assignments) {
        row[col] = value;
      }
      MDV_RETURN_IF_ERROR(table->Update(id, std::move(row)));
      ++result.affected_rows;
    }
    return result;
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlResult> ExecuteSql(Database* db, std::string_view sql) {
  MDV_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, SqlTokenize(sql));
  SqlParser parser(std::move(tokens));
  return parser.Execute(db);
}

std::string FormatRowSet(const RowSet& rows) {
  std::vector<size_t> widths(rows.columns.size());
  for (size_t i = 0; i < rows.columns.size(); ++i) {
    widths[i] = rows.columns[i].size();
  }
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows.rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (size_t i = 0; i < rows.columns.size(); ++i) {
    out += (i > 0 ? " | " : "") + pad(rows.columns[i], widths[i]);
  }
  out += "\n";
  for (size_t i = 0; i < rows.columns.size(); ++i) {
    out += (i > 0 ? "-+-" : "") + std::string(widths[i], '-');
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += (i > 0 ? " | " : "") + pad(line[i], widths[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace mdv::rdbms
