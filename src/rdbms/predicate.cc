#include "rdbms/predicate.h"

#include "common/string_util.h"

namespace mdv::rdbms {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // =, != and contains are symmetric or unflippable.
  }
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
    case CompareOp::kContains:
      return CompareOp::kContains;
  }
  return op;
}

bool EvaluateCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  if (op == CompareOp::kContains) {
    if (!lhs.is_string() || !rhs.is_string()) return false;
    return Contains(lhs.as_string(), rhs.as_string());
  }
  // For ordered comparisons where one side is numeric, coerce numeric-looking
  // strings so that "64" stored in a string column compares as 64.
  int cmp;
  if (lhs.is_numeric() != rhs.is_numeric() &&
      op != CompareOp::kEq && op != CompareOp::kNe) {
    auto ln = lhs.TryNumeric();
    auto rn = rhs.TryNumeric();
    if (!ln || !rn) return false;
    cmp = *ln < *rn ? -1 : (*ln > *rn ? 1 : 0);
  } else if (lhs.is_numeric() != rhs.is_numeric()) {
    // Equality across type classes: try numeric coercion, else unequal.
    auto ln = lhs.TryNumeric();
    auto rn = rhs.TryNumeric();
    if (ln && rn) {
      cmp = *ln < *rn ? -1 : (*ln > *rn ? 1 : 0);
    } else {
      return op == CompareOp::kNe;
    }
  } else {
    cmp = lhs.Compare(rhs);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kContains:
      return false;  // Handled above.
  }
  return false;
}

namespace {

class ColumnComparePredicate final : public Predicate {
 public:
  ColumnComparePredicate(size_t column, CompareOp op, Value constant)
      : column_(column), op_(op), constant_(std::move(constant)) {}

  bool Evaluate(const Row& row) const override {
    return EvaluateCompare(row[column_], op_, constant_);
  }

  std::string ToString() const override {
    return "$" + std::to_string(column_) + " " + CompareOpToString(op_) + " " +
           constant_.ToString();
  }

 private:
  size_t column_;
  CompareOp op_;
  Value constant_;
};

class ColumnColumnComparePredicate final : public Predicate {
 public:
  ColumnColumnComparePredicate(size_t lhs, CompareOp op, size_t rhs)
      : lhs_(lhs), op_(op), rhs_(rhs) {}

  bool Evaluate(const Row& row) const override {
    return EvaluateCompare(row[lhs_], op_, row[rhs_]);
  }

  std::string ToString() const override {
    return "$" + std::to_string(lhs_) + " " + CompareOpToString(op_) + " $" +
           std::to_string(rhs_);
  }

 private:
  size_t lhs_;
  CompareOp op_;
  size_t rhs_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  bool Evaluate(const Row& row) const override {
    for (const auto& child : children_) {
      if (!child->Evaluate(row)) return false;
    }
    return true;
  }

  std::string ToString() const override {
    if (children_.empty()) return "TRUE";
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  bool Evaluate(const Row& row) const override {
    for (const auto& child : children_) {
      if (child->Evaluate(row)) return true;
    }
    return false;
  }

  std::string ToString() const override {
    if (children_.empty()) return "FALSE";
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " OR ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  bool Evaluate(const Row& row) const override {
    return !child_->Evaluate(row);
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

class TruePredicate final : public Predicate {
 public:
  bool Evaluate(const Row&) const override { return true; }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr ColumnCompare(size_t column, CompareOp op, Value constant) {
  return std::make_shared<ColumnComparePredicate>(column, op,
                                                  std::move(constant));
}

PredicatePtr ColumnColumnCompare(size_t lhs_column, CompareOp op,
                                 size_t rhs_column) {
  return std::make_shared<ColumnColumnComparePredicate>(lhs_column, op,
                                                        rhs_column);
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_shared<AndPredicate>(std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_shared<OrPredicate>(std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

PredicatePtr True() { return std::make_shared<TruePredicate>(); }

}  // namespace mdv::rdbms
