#include "rdbms/query.h"

#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace mdv::rdbms {

int RowSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

RowSet FromTable(const Table& table,
                 const std::vector<ScanCondition>& conditions,
                 const std::string& prefix) {
  RowSet out;
  for (const ColumnDef& col : table.schema().columns()) {
    out.columns.push_back(prefix.empty() ? col.name : prefix + "." + col.name);
  }
  out.rows = table.SelectRows(conditions);
  return out;
}

RowSet Select(const RowSet& input, const Predicate& predicate) {
  RowSet out;
  out.columns = input.columns;
  for (const Row& row : input.rows) {
    if (predicate.Evaluate(row)) out.rows.push_back(row);
  }
  return out;
}

namespace {

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

std::vector<std::string> ConcatColumns(const std::vector<std::string>& a,
                                       const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

RowSet HashJoin(const RowSet& left, size_t left_col, const RowSet& right,
                size_t right_col) {
  obs::DefaultMetrics().GetCounter("mdv.rdbms.joins_total").Increment();
  obs::ScopedLatency timer(
      &obs::DefaultMetrics().GetHistogram("mdv.rdbms.join_us"));
  RowSet out;
  out.columns = ConcatColumns(left.columns, right.columns);
  // Build on the smaller side; probe with the larger.
  const bool build_left = left.rows.size() <= right.rows.size();
  const RowSet& build = build_left ? left : right;
  const RowSet& probe = build_left ? right : left;
  const size_t build_col = build_left ? left_col : right_col;
  const size_t probe_col = build_left ? right_col : left_col;

  std::unordered_multimap<Value, const Row*, ValueHash> ht;
  ht.reserve(build.rows.size());
  for (const Row& row : build.rows) {
    if (row[build_col].is_null()) continue;  // NULL never joins.
    ht.emplace(row[build_col], &row);
  }
  for (const Row& row : probe.rows) {
    if (row[probe_col].is_null()) continue;
    auto [begin, end] = ht.equal_range(row[probe_col]);
    for (auto it = begin; it != end; ++it) {
      const Row& brow = *it->second;
      out.rows.push_back(build_left ? ConcatRows(brow, row)
                                    : ConcatRows(row, brow));
    }
  }
  return out;
}

RowSet NestedLoopJoin(const RowSet& left, size_t left_col, CompareOp op,
                      const RowSet& right, size_t right_col) {
  if (op == CompareOp::kEq) return HashJoin(left, left_col, right, right_col);
  obs::DefaultMetrics().GetCounter("mdv.rdbms.joins_total").Increment();
  obs::ScopedLatency timer(
      &obs::DefaultMetrics().GetHistogram("mdv.rdbms.join_us"));
  RowSet out;
  out.columns = ConcatColumns(left.columns, right.columns);
  for (const Row& lrow : left.rows) {
    for (const Row& rrow : right.rows) {
      if (EvaluateCompare(lrow[left_col], op, rrow[right_col])) {
        out.rows.push_back(ConcatRows(lrow, rrow));
      }
    }
  }
  return out;
}

RowSet Project(const RowSet& input,
               const std::vector<size_t>& column_indexes) {
  RowSet out;
  for (size_t idx : column_indexes) out.columns.push_back(input.columns[idx]);
  out.rows.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    Row projected;
    projected.reserve(column_indexes.size());
    for (size_t idx : column_indexes) projected.push_back(row[idx]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

namespace {

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0;
    for (const Value& v : row) {
      h = h * 1099511628211ULL + v.Hash();
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      // NULL cells compare equal for dedup purposes.
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && a[i] != b[i]) return false;
    }
    return true;
  }
};

}  // namespace

RowSet Distinct(const RowSet& input) {
  RowSet out;
  out.columns = input.columns;
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    if (seen.insert(row).second) out.rows.push_back(row);
  }
  return out;
}

Result<RowSet> Union(const RowSet& a, const RowSet& b) {
  if (a.columns.size() != b.columns.size()) {
    return Status::InvalidArgument("UNION arity mismatch: " +
                                   std::to_string(a.columns.size()) + " vs " +
                                   std::to_string(b.columns.size()));
  }
  RowSet out;
  out.columns = a.columns;
  out.rows = a.rows;
  out.rows.insert(out.rows.end(), b.rows.begin(), b.rows.end());
  return out;
}

}  // namespace mdv::rdbms
