#ifndef MDV_RDBMS_PREDICATE_H_
#define MDV_RDBMS_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "rdbms/row.h"
#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace mdv::rdbms {

/// Comparison operators of the engine. kContains is substring match on
/// strings (the rule language's `contains`, paper §2.3).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

const char* CompareOpToString(CompareOp op);

/// The operator with operand sides swapped (a < b  <=>  b > a).
CompareOp FlipCompareOp(CompareOp op);

/// The logical negation (a < b  <=>  !(a >= b)). kContains has no
/// negation in this enum and is returned unchanged; callers that negate
/// contains must handle it separately.
CompareOp NegateCompareOp(CompareOp op);

/// Evaluates `lhs op rhs` with SQL-ish semantics: comparisons involving
/// NULL are false; numeric comparisons coerce numeric-looking strings
/// (paper §3.3.4 stores numeric constants as strings and reconverts).
bool EvaluateCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// A boolean predicate over one row. Built via the factory functions below
/// and evaluated row-at-a-time during scans.
class Predicate {
 public:
  virtual ~Predicate() = default;
  virtual bool Evaluate(const Row& row) const = 0;
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// column `op` constant.
PredicatePtr ColumnCompare(size_t column, CompareOp op, Value constant);
/// column `op` column (same row).
PredicatePtr ColumnColumnCompare(size_t lhs_column, CompareOp op,
                                 size_t rhs_column);
/// Conjunction; empty input means TRUE.
PredicatePtr And(std::vector<PredicatePtr> children);
/// Disjunction; empty input means FALSE.
PredicatePtr Or(std::vector<PredicatePtr> children);
PredicatePtr Not(PredicatePtr child);
PredicatePtr True();

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_PREDICATE_H_
