#ifndef MDV_RDBMS_ROW_H_
#define MDV_RDBMS_ROW_H_

#include <cstdint>
#include <vector>

#include "rdbms/value.h"

namespace mdv::rdbms {

/// A tuple; cell order matches the owning table's schema.
using Row = std::vector<Value>;

/// Stable identifier of a row within its table (never reused).
using RowId = int64_t;

constexpr RowId kInvalidRowId = -1;

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_ROW_H_
