#ifndef MDV_RDBMS_DATABASE_H_
#define MDV_RDBMS_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdbms/table.h"

namespace mdv::rdbms {

/// The catalog of an embedded database instance: named tables plus their
/// indexes. Each MDP and each LMR owns one Database (the paper's
/// "standard relational database system" used as basic data storage).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; AlreadyExists if the name is taken. Returns the
  /// live table, owned by the database.
  Result<Table*> CreateTable(TableSchema schema);

  /// Returns the table or nullptr.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Drops the table; NotFound if absent.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Sum of NumRows over all tables — rough database size for diagnostics.
  size_t TotalRows() const;

  /// Runtime invariant auditor: runs Table::CheckInvariants on every
  /// table (index↔heap row-count parity, entry membership, B-tree key
  /// order). Internal naming the table and invariant on the first
  /// violation. Called from tests and, under the MDV_AUDIT_INVARIANTS
  /// debug flag, after every filter run.
  Status CheckInvariants() const;

  // ---- Transactions. -----------------------------------------------------
  //
  // One transaction at a time; while active, all row mutations across
  // every table are recorded and RollbackTransaction() restores the
  // exact pre-transaction state (including row ids and indexes). Tables
  // created during the transaction are dropped on rollback; DropTable is
  // rejected inside a transaction.

  /// Starts a transaction; InvalidArgument if one is active.
  Status BeginTransaction();

  /// Makes the transaction's changes permanent.
  Status CommitTransaction();

  /// Undoes every change since BeginTransaction.
  Status RollbackTransaction();

  bool InTransaction() const { return in_transaction_; }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  UndoLog undo_;
  bool in_transaction_ = false;
  std::vector<std::string> created_in_transaction_;
};

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_DATABASE_H_
