#ifndef MDV_RDBMS_SQL_H_
#define MDV_RDBMS_SQL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdbms/database.h"
#include "rdbms/query.h"

namespace mdv::rdbms {

/// Result of executing one SQL statement: a relation for queries, an
/// affected-row count for DML/DDL.
struct SqlResult {
  RowSet rows;              ///< SELECT output (empty otherwise).
  size_t affected_rows = 0; ///< INSERT/UPDATE/DELETE count; 0 for DDL.
  bool is_query = false;
};

/// Executes one statement of the engine's SQL subset against `db`.
///
/// Supported grammar (keywords case-insensitive):
///
///   CREATE TABLE t (col TYPE [, ...])          TYPE ∈ {INT, DOUBLE, STRING}
///   CREATE [HASH|BTREE] INDEX ON t (col)
///   DROP TABLE t
///   INSERT INTO t VALUES (v [, ...])
///   DELETE FROM t [WHERE conjunction]
///   UPDATE t SET col = value [, ...] [WHERE conjunction]
///   SELECT */cols FROM t [alias] [, t2 [alias2] ...] [WHERE conjunction]
///
/// WHERE clauses are conjunctions of `operand op operand` with
/// op ∈ {=, !=, <, <=, >, >=, CONTAINS}; operands are (optionally
/// alias-qualified) column references, 'string' literals, or numbers.
/// Multi-table queries are evaluated as joins: equality conditions
/// between two tables become hash joins, everything else is applied as a
/// residual filter. Single-table conditions are pushed into the scan so
/// they can use indexes.
///
/// This is the §2.2 substrate claim made concrete: MDV "uses a relational
/// database management system as basic data storage" and translates
/// search requests into SQL join queries.
Result<SqlResult> ExecuteSql(Database* db, std::string_view sql);

/// Renders a RowSet as an ASCII table (for shells and examples).
std::string FormatRowSet(const RowSet& rows);

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_SQL_H_
