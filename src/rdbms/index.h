#ifndef MDV_RDBMS_INDEX_H_
#define MDV_RDBMS_INDEX_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdbms/row.h"
#include "rdbms/value.h"

namespace mdv::rdbms {

/// Kinds of secondary indexes the engine offers.
enum class IndexKind {
  kBTree,  ///< Ordered; supports point and range lookups.
  kHash,   ///< Unordered; point lookups only.
};

/// A secondary index over one column of a table. Maintained by Table on
/// every insert/update/delete; duplicates allowed (non-unique).
class Index {
 public:
  virtual ~Index() = default;

  virtual IndexKind kind() const = 0;
  /// The indexed column's position in the table schema.
  virtual size_t column() const = 0;

  virtual void Insert(const Value& key, RowId row_id) = 0;
  virtual void Remove(const Value& key, RowId row_id) = 0;

  /// Appends the row ids whose key equals `key` to `out`.
  virtual void Lookup(const Value& key, std::vector<RowId>* out) const = 0;

  /// Appends row ids with key in [lower, upper] (bounds optional via NULL
  /// + flags). Only meaningful for ordered indexes; hash indexes report
  /// range support via SupportsRange().
  virtual bool SupportsRange() const = 0;
  virtual void LookupRange(const Value& lower, bool lower_inclusive,
                           bool has_lower, const Value& upper,
                           bool upper_inclusive, bool has_upper,
                           std::vector<RowId>* out) const = 0;

  virtual size_t NumEntries() const = 0;

  /// Visits every (key, row id) entry. Ordered indexes visit in key
  /// order — the invariant auditor (Table::CheckInvariants) relies on
  /// this to verify B-tree key order.
  virtual void ForEachEntry(
      const std::function<void(const Value&, RowId)>& fn) const = 0;
};

/// Ordered index on std::multimap (red-black tree).
class BTreeIndex final : public Index {
 public:
  explicit BTreeIndex(size_t column) : column_(column) {}

  IndexKind kind() const override { return IndexKind::kBTree; }
  size_t column() const override { return column_; }

  void Insert(const Value& key, RowId row_id) override;
  void Remove(const Value& key, RowId row_id) override;
  void Lookup(const Value& key, std::vector<RowId>* out) const override;
  bool SupportsRange() const override { return true; }
  void LookupRange(const Value& lower, bool lower_inclusive, bool has_lower,
                   const Value& upper, bool upper_inclusive, bool has_upper,
                   std::vector<RowId>* out) const override;
  size_t NumEntries() const override { return entries_.size(); }
  void ForEachEntry(
      const std::function<void(const Value&, RowId)>& fn) const override {
    for (const auto& [key, row_id] : entries_) fn(key, row_id);
  }

 private:
  size_t column_;
  std::multimap<Value, RowId, ValueLess> entries_;
};

/// Unordered point-lookup index on std::unordered_multimap.
class HashIndex final : public Index {
 public:
  explicit HashIndex(size_t column) : column_(column) {}

  IndexKind kind() const override { return IndexKind::kHash; }
  size_t column() const override { return column_; }

  void Insert(const Value& key, RowId row_id) override;
  void Remove(const Value& key, RowId row_id) override;
  void Lookup(const Value& key, std::vector<RowId>* out) const override;
  bool SupportsRange() const override { return false; }
  void LookupRange(const Value&, bool, bool, const Value&, bool, bool,
                   std::vector<RowId>*) const override {}
  size_t NumEntries() const override { return entries_.size(); }
  void ForEachEntry(
      const std::function<void(const Value&, RowId)>& fn) const override {
    for (const auto& [key, row_id] : entries_) fn(key, row_id);
  }

 private:
  size_t column_;
  std::unordered_multimap<Value, RowId, ValueHash> entries_;
};

std::unique_ptr<Index> MakeIndex(IndexKind kind, size_t column);

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_INDEX_H_
