#ifndef MDV_RDBMS_PERSISTENCE_H_
#define MDV_RDBMS_PERSISTENCE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rdbms/database.h"

namespace mdv::rdbms {

/// Serializes the whole database — schemas, index definitions, and rows —
/// into a line-oriented text format. RowIds are not preserved; MDV's
/// tables reference each other through value columns (rule_id etc.), so
/// a reloaded database is semantically identical.
Status SaveDatabase(const Database& db, std::ostream& out);

/// Writes SaveDatabase output to `path`, replacing any previous file
/// atomically (temp file + fsync + rename): a crash mid-save leaves the
/// old image intact.
Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// Reconstructs a database from SaveDatabase output. Indexes are
/// re-created and back-filled. Truncated or corrupted input — torn
/// tails, mangled counts, unknown tags — yields ParseError, never a
/// crash or a silently partial database.
Result<std::unique_ptr<Database>> LoadDatabase(std::istream& in);

Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path);

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_PERSISTENCE_H_
