#include "rdbms/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace mdv::rdbms {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

std::optional<double> Value::TryNumeric() const {
  if (is_numeric()) return numeric();
  if (!is_string()) return std::nullopt;
  const std::string& s = as_string();
  if (s.empty()) return std::nullopt;
  double out = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return out;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", as_double());
    return buf;
  }
  return as_string();
}

namespace {
// Rank in the canonical value order: NULL < numeric < string.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(*this);
  int rb = TypeRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes.
    case 1: {
      // Compare ints exactly when both are ints to avoid precision loss.
      if (is_int() && other.is_int()) {
        int64_t a = as_int();
        int64_t b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = numeric();
      double b = other.numeric();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_numeric()) {
    // Hash via the double representation so 3 and 3.0 collide with ==.
    double d = numeric();
    if (d == 0.0) d = 0.0;  // Normalize -0.0.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return std::hash<uint64_t>()(bits);
  }
  return std::hash<std::string>()(as_string());
}

}  // namespace mdv::rdbms
