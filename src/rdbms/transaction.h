#ifndef MDV_RDBMS_TRANSACTION_H_
#define MDV_RDBMS_TRANSACTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdbms/row.h"

namespace mdv::rdbms {

class Table;

/// Undo log recording inverse images of row mutations. While attached to
/// the tables of a database (Database::BeginTransaction), every
/// insert/update/delete appends an entry; Rollback() replays the
/// inverses in reverse order, restoring the exact pre-transaction rows
/// (including their RowIds). Index maintenance happens through the
/// normal mutation paths, so indexes stay consistent.
class UndoLog {
 public:
  UndoLog() = default;

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  void RecordInsert(Table* table, RowId row_id);
  void RecordDelete(Table* table, RowId row_id, Row old_row);
  void RecordUpdate(Table* table, RowId row_id, Row old_row);

  /// Undoes every recorded mutation (newest first) and clears the log.
  Status Rollback();

  /// Forgets the recorded mutations (commit).
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }

 private:
  enum class Kind { kInsert, kDelete, kUpdate };
  struct Entry {
    Kind kind;
    Table* table;
    RowId row_id;
    Row old_row;  // Unused for kInsert.
  };
  std::vector<Entry> entries_;
};

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_TRANSACTION_H_
