#ifndef MDV_RDBMS_QUERY_H_
#define MDV_RDBMS_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdbms/predicate.h"
#include "rdbms/row.h"
#include "rdbms/table.h"

namespace mdv::rdbms {

/// A transient relation flowing between query operators: named columns
/// plus materialized rows. Produced by FromTable and transformed by the
/// operator functions below (select → join → project pipelines).
struct RowSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Index of `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  size_t NumRows() const { return rows.size(); }
  bool Empty() const { return rows.empty(); }
};

/// Materializes rows of `table` satisfying `conditions` (index-assisted)
/// into a RowSet whose columns carry the table's column names, optionally
/// prefixed ("t." + name) to keep names unique across joins.
RowSet FromTable(const Table& table,
                 const std::vector<ScanCondition>& conditions,
                 const std::string& prefix = "");

/// Keeps rows satisfying `predicate` (positional over the RowSet columns).
RowSet Select(const RowSet& input, const Predicate& predicate);

/// Equi-join on left.columns[left_col] == right.columns[right_col], built
/// with a hash table on the smaller side. Output columns are
/// left.columns ++ right.columns.
RowSet HashJoin(const RowSet& left, size_t left_col, const RowSet& right,
                size_t right_col);

/// General theta join (nested loop) for non-equality join predicates.
RowSet NestedLoopJoin(const RowSet& left, size_t left_col, CompareOp op,
                      const RowSet& right, size_t right_col);

/// Keeps only the columns at `column_indexes`, in that order.
RowSet Project(const RowSet& input, const std::vector<size_t>& column_indexes);

/// Removes duplicate rows (exact Value equality per cell).
RowSet Distinct(const RowSet& input);

/// Appends the rows of `b` to `a`; column lists must have equal arity.
Result<RowSet> Union(const RowSet& a, const RowSet& b);

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_QUERY_H_
