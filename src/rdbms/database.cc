#include "rdbms/database.h"

#include <algorithm>

namespace mdv::rdbms {

Result<Table*> Database::CreateTable(TableSchema schema) {
  // Copy the name: `schema` is moved into the Table below, and the map
  // key must outlive that move.
  std::string name = schema.table_name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name);
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  if (in_transaction_) {
    raw->set_undo_log(&undo_);
    created_in_transaction_.push_back(name);
  }
  return raw;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (in_transaction_) {
    return Status::Unsupported("cannot drop tables inside a transaction");
  }
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table " + name);
  }
  return Status::OK();
}

Status Database::BeginTransaction() {
  if (in_transaction_) {
    return Status::InvalidArgument("a transaction is already active");
  }
  in_transaction_ = true;
  created_in_transaction_.clear();
  for (auto& [name, table] : tables_) {
    table->set_undo_log(&undo_);
  }
  return Status::OK();
}

Status Database::CommitTransaction() {
  if (!in_transaction_) {
    return Status::InvalidArgument("no active transaction");
  }
  for (auto& [name, table] : tables_) {
    table->set_undo_log(nullptr);
  }
  undo_.Clear();
  created_in_transaction_.clear();
  in_transaction_ = false;
  return Status::OK();
}

Status Database::RollbackTransaction() {
  if (!in_transaction_) {
    return Status::InvalidArgument("no active transaction");
  }
  for (auto& [name, table] : tables_) {
    table->set_undo_log(nullptr);
  }
  in_transaction_ = false;  // Before DropTable of created tables.
  Status status = undo_.Rollback();
  for (const std::string& name : created_in_transaction_) {
    Status drop = DropTable(name);
    if (!drop.ok() && status.ok()) status = drop;
  }
  created_in_transaction_.clear();
  return status;
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->NumRows();
  return total;
}

Status Database::CheckInvariants() const {
  for (const auto& [name, table] : tables_) {
    MDV_RETURN_IF_ERROR(table->CheckInvariants());
  }
  return Status::OK();
}

}  // namespace mdv::rdbms
