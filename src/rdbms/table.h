#ifndef MDV_RDBMS_TABLE_H_
#define MDV_RDBMS_TABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "rdbms/index.h"
#include "rdbms/predicate.h"
#include "rdbms/row.h"
#include "rdbms/schema.h"
#include "rdbms/transaction.h"

namespace mdv::rdbms {

/// One conjunct of a simple scan: `column op constant`. Used by the
/// access-path planner; arbitrary predicates go through SelectWhere.
struct ScanCondition {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// Execution statistics, exposed so benchmarks can verify which access
/// path was used (paper §3.3.4 stresses physical design of filter tables).
///
/// The struct is the *per-table-instance* view (`Table::stats()`,
/// resettable per test/bench). Every increment is mirrored into the
/// process-wide obs::DefaultMetrics() registry under
/// `mdv.rdbms.table.<name>.*` counters, which aggregate across database
/// instances (e.g. all MDPs of one MdvSystem) and feed MetricsSnapshot().
struct TableStats {
  int64_t index_lookups = 0;  ///< Selects served via a secondary index.
  int64_t full_scans = 0;     ///< Selects that scanned the whole heap.
  int64_t rows_examined = 0;  ///< Rows touched by either access path.
};

/// An in-memory heap table with optional secondary indexes.
///
/// Rows are addressed by stable RowIds; deleting a row never invalidates
/// other ids. All mutation paths keep every registered index in sync.
/// Concurrent const reads (Select*/Scan/Get) are safe — the access-path
/// statistics they update are relaxed atomics. Mutations still need
/// external serialization against both readers and other writers; the
/// sharded filter engine relies on this by giving each shard its own
/// table set.
class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  TableStats stats() const {
    TableStats out;
    out.index_lookups = stats_.index_lookups.load(std::memory_order_relaxed);
    out.full_scans = stats_.full_scans.load(std::memory_order_relaxed);
    out.rows_examined = stats_.rows_examined.load(std::memory_order_relaxed);
    return out;
  }
  void ResetStats() {
    stats_.index_lookups.store(0, std::memory_order_relaxed);
    stats_.full_scans.store(0, std::memory_order_relaxed);
    stats_.rows_examined.store(0, std::memory_order_relaxed);
  }

  /// Validates arity and (loosely) types, then inserts. Returns the new
  /// RowId. STRING columns accept any value; numeric columns accept
  /// numerics or NULL.
  Result<RowId> Insert(Row row);

  /// Batch insert: validates every row up front (all-or-nothing — on a
  /// validation error nothing is inserted), then inserts without
  /// per-row error plumbing. The hot write paths of the filter
  /// (MaterializedResults appends, ResultObjects rewrites) use this.
  Status InsertRows(std::vector<Row> rows);

  /// Removes the row; NotFound if the id does not exist.
  Status Delete(RowId row_id);

  /// Replaces the row contents (same validation as Insert).
  Status Update(RowId row_id, Row row);

  /// Returns the row or nullptr.
  const Row* Get(RowId row_id) const;

  /// Creates a secondary index over `column_name`. Existing rows are
  /// back-filled. AlreadyExists if an index on the column exists.
  Status CreateIndex(const std::string& column_name, IndexKind kind);

  /// Drops the index on `column_name` (NotFound if absent).
  Status DropIndex(const std::string& column_name);

  bool HasIndex(size_t column) const;

  /// Visits every row. The callback must not mutate the table.
  void Scan(const std::function<void(RowId, const Row&)>& fn) const;

  /// Returns ids of rows satisfying all `conditions`. Picks an index
  /// access path when one condition is indexable (equality on any index;
  /// range on a B-tree), otherwise falls back to a full scan.
  std::vector<RowId> SelectRowIds(
      const std::vector<ScanCondition>& conditions) const;

  /// Returns copies of rows satisfying all `conditions`.
  std::vector<Row> SelectRows(
      const std::vector<ScanCondition>& conditions) const;

  /// Returns ids of rows satisfying an arbitrary predicate (full scan).
  std::vector<RowId> SelectWhere(const Predicate& predicate) const;

  /// Removes all rows satisfying all `conditions`; returns count removed.
  size_t DeleteWhere(const std::vector<ScanCondition>& conditions);

  /// Removes every row (indexes stay registered).
  void Truncate();

  // ---- Transactions. -----------------------------------------------------

  /// Attaches (or detaches, with nullptr) an undo log; while attached,
  /// every mutation records its inverse. Managed by
  /// Database::BeginTransaction — call directly only in tests.
  void set_undo_log(UndoLog* undo) { undo_ = undo; }

  /// Re-inserts a row under its original id (rollback of a deletion).
  /// AlreadyExists if the id is live.
  Status RestoreRow(RowId row_id, Row row);

  /// Invariant auditor: every secondary index must hold exactly one
  /// entry per row whose key equals the row's column value (row-count
  /// parity, no stale or missing entries), and ordered indexes must
  /// visit keys in non-decreasing order. Internal naming the violated
  /// invariant. O(rows × indexes × log rows).
  Status CheckInvariants() const;

 private:
  Status ValidateRow(const Row& row) const;
  void IndexInsert(RowId row_id, const Row& row);
  void IndexRemove(RowId row_id, const Row& row);
  /// Picks the most selective usable condition; -1 if none is indexable.
  int ChooseAccessPath(const std::vector<ScanCondition>& conditions) const;
  static bool RowMatches(const Row& row,
                         const std::vector<ScanCondition>& conditions);

  /// Atomic twin of TableStats: the const select paths increment these
  /// from concurrent shard workers, so plain int64 fields would race.
  struct AtomicStats {
    std::atomic<int64_t> index_lookups{0};
    std::atomic<int64_t> full_scans{0};
    std::atomic<int64_t> rows_examined{0};
  };

  TableSchema schema_;
  std::map<RowId, Row> rows_;
  RowId next_row_id_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;  // At most one per column.
  UndoLog* undo_ = nullptr;
  mutable AtomicStats stats_;

  // Registry mirrors of stats_, resolved once at construction (handles
  // are stable; incrementing is a relaxed atomic add). Shared by every
  // table of the same name across database instances.
  obs::Counter* metric_index_lookups_;
  obs::Counter* metric_full_scans_;
  obs::Counter* metric_rows_examined_;
  obs::Counter* metric_rows_inserted_;
};

}  // namespace mdv::rdbms

#endif  // MDV_RDBMS_TABLE_H_
