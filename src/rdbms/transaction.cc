#include "rdbms/transaction.h"

#include "rdbms/table.h"

namespace mdv::rdbms {

void UndoLog::RecordInsert(Table* table, RowId row_id) {
  entries_.push_back(Entry{Kind::kInsert, table, row_id, {}});
}

void UndoLog::RecordDelete(Table* table, RowId row_id, Row old_row) {
  entries_.push_back(Entry{Kind::kDelete, table, row_id, std::move(old_row)});
}

void UndoLog::RecordUpdate(Table* table, RowId row_id, Row old_row) {
  entries_.push_back(Entry{Kind::kUpdate, table, row_id, std::move(old_row)});
}

Status UndoLog::Rollback() {
  // The undo operations run through the normal mutation paths; detach
  // the log from the involved tables first so they do not re-log.
  for (const Entry& entry : entries_) {
    entry.table->set_undo_log(nullptr);
  }
  Status status = Status::OK();
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Status st;
    switch (it->kind) {
      case Kind::kInsert:
        st = it->table->Delete(it->row_id);
        break;
      case Kind::kDelete:
        st = it->table->RestoreRow(it->row_id, it->old_row);
        break;
      case Kind::kUpdate:
        st = it->table->Update(it->row_id, it->old_row);
        break;
    }
    if (!st.ok() && status.ok()) status = st;  // Keep undoing; report first.
  }
  entries_.clear();
  return status;
}

}  // namespace mdv::rdbms
