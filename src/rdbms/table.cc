#include "rdbms/table.h"

#include <algorithm>
#include <atomic>

namespace mdv::rdbms {

namespace {

/// Aggregate (cross-table) lookup latency. Recording every select would
/// cost two clock reads on paths that do little more than one index
/// probe, so lookups are sampled 1-in-kLookupSampleRate; the histogram
/// still converges on the true latency distribution while keeping the
/// per-call overhead to one relaxed increment.
constexpr uint64_t kLookupSampleRate = 16;

obs::Histogram& LookupLatencyUs() {
  static obs::Histogram& h =
      obs::DefaultMetrics().GetHistogram("mdv.rdbms.lookup_us");
  return h;
}

obs::Histogram& InsertLatencyUs() {
  static obs::Histogram& h =
      obs::DefaultMetrics().GetHistogram("mdv.rdbms.insert_us");
  return h;
}

bool SampleLookup() {
  static std::atomic<uint64_t> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) % kLookupSampleRate == 0;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  obs::MetricsRegistry& metrics = obs::DefaultMetrics();
  const std::string prefix = "mdv.rdbms.table." + schema_.table_name() + ".";
  metric_index_lookups_ = &metrics.GetCounter(prefix + "index_lookups_total");
  metric_full_scans_ = &metrics.GetCounter(prefix + "full_scans_total");
  metric_rows_examined_ = &metrics.GetCounter(prefix + "rows_examined_total");
  metric_rows_inserted_ = &metrics.GetCounter(prefix + "rows_inserted_total");
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.column(i);
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column " +
                                       col.name);
      }
      continue;
    }
    switch (col.type) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
        if (!row[i].is_numeric()) {
          return Status::InvalidArgument("non-numeric value in column " +
                                         col.name);
        }
        break;
      case ColumnType::kString:
        // STRING accepts anything; values render via ToString on demand.
        break;
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  obs::ScopedLatency timer(&InsertLatencyUs());
  MDV_RETURN_IF_ERROR(ValidateRow(row));
  RowId id = next_row_id_++;
  IndexInsert(id, row);
  rows_.emplace(id, std::move(row));
  if (undo_ != nullptr) undo_->RecordInsert(this, id);
  metric_rows_inserted_->Increment();
  return id;
}

Status Table::InsertRows(std::vector<Row> rows) {
  obs::ScopedLatency timer(&InsertLatencyUs());
  for (const Row& row : rows) MDV_RETURN_IF_ERROR(ValidateRow(row));
  metric_rows_inserted_->Add(static_cast<int64_t>(rows.size()));
  for (Row& row : rows) {
    RowId id = next_row_id_++;
    IndexInsert(id, row);
    rows_.emplace(id, std::move(row));
    if (undo_ != nullptr) undo_->RecordInsert(this, id);
  }
  return Status::OK();
}

Status Table::Delete(RowId row_id) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(row_id) + " in table " +
                            schema_.table_name());
  }
  IndexRemove(row_id, it->second);
  if (undo_ != nullptr) undo_->RecordDelete(this, row_id, it->second);
  rows_.erase(it);
  return Status::OK();
}

Status Table::Update(RowId row_id, Row row) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(row_id) + " in table " +
                            schema_.table_name());
  }
  MDV_RETURN_IF_ERROR(ValidateRow(row));
  IndexRemove(row_id, it->second);
  if (undo_ != nullptr) undo_->RecordUpdate(this, row_id, it->second);
  it->second = std::move(row);
  IndexInsert(row_id, it->second);
  return Status::OK();
}

const Row* Table::Get(RowId row_id) const {
  auto it = rows_.find(row_id);
  return it == rows_.end() ? nullptr : &it->second;
}

Status Table::CreateIndex(const std::string& column_name, IndexKind kind) {
  auto col = schema_.ColumnIndex(column_name);
  if (!col) {
    return Status::NotFound("column " + column_name + " in table " +
                            schema_.table_name());
  }
  if (HasIndex(*col)) {
    return Status::AlreadyExists("index on " + schema_.table_name() + "." +
                                 column_name);
  }
  auto index = MakeIndex(kind, *col);
  for (const auto& [id, row] : rows_) {
    index->Insert(row[*col], id);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Status Table::DropIndex(const std::string& column_name) {
  auto col = schema_.ColumnIndex(column_name);
  if (!col) {
    return Status::NotFound("column " + column_name + " in table " +
                            schema_.table_name());
  }
  auto it = std::find_if(
      indexes_.begin(), indexes_.end(),
      [&](const std::unique_ptr<Index>& ix) { return ix->column() == *col; });
  if (it == indexes_.end()) {
    return Status::NotFound("index on " + schema_.table_name() + "." +
                            column_name);
  }
  indexes_.erase(it);
  return Status::OK();
}

bool Table::HasIndex(size_t column) const {
  return std::any_of(
      indexes_.begin(), indexes_.end(),
      [&](const std::unique_ptr<Index>& ix) { return ix->column() == column; });
}

void Table::Scan(const std::function<void(RowId, const Row&)>& fn) const {
  for (const auto& [id, row] : rows_) fn(id, row);
}

void Table::IndexInsert(RowId row_id, const Row& row) {
  for (auto& index : indexes_) index->Insert(row[index->column()], row_id);
}

void Table::IndexRemove(RowId row_id, const Row& row) {
  for (auto& index : indexes_) index->Remove(row[index->column()], row_id);
}

bool Table::RowMatches(const Row& row,
                       const std::vector<ScanCondition>& conditions) {
  for (const auto& cond : conditions) {
    if (!EvaluateCompare(row[cond.column], cond.op, cond.constant)) {
      return false;
    }
  }
  return true;
}

int Table::ChooseAccessPath(
    const std::vector<ScanCondition>& conditions) const {
  int best = -1;
  for (size_t i = 0; i < conditions.size(); ++i) {
    const ScanCondition& cond = conditions[i];
    for (const auto& index : indexes_) {
      if (index->column() != cond.column) continue;
      bool usable =
          cond.op == CompareOp::kEq ||
          (index->SupportsRange() &&
           (cond.op == CompareOp::kLt || cond.op == CompareOp::kLe ||
            cond.op == CompareOp::kGt || cond.op == CompareOp::kGe));
      if (!usable) continue;
      // Prefer equality over range (more selective in general).
      if (best == -1 || (conditions[best].op != CompareOp::kEq &&
                         cond.op == CompareOp::kEq)) {
        best = static_cast<int>(i);
      }
    }
  }
  return best;
}

std::vector<RowId> Table::SelectRowIds(
    const std::vector<ScanCondition>& conditions) const {
  obs::ScopedLatency timer(SampleLookup() ? &LookupLatencyUs() : nullptr);
  std::vector<RowId> out;
  int path = ChooseAccessPath(conditions);
  if (path >= 0) {
    const ScanCondition& cond = conditions[path];
    const Index* index = nullptr;
    for (const auto& ix : indexes_) {
      if (ix->column() != cond.column) continue;
      bool usable = cond.op == CompareOp::kEq || ix->SupportsRange();
      if (usable) {
        index = ix.get();
        break;
      }
    }
    std::vector<RowId> candidates;
    if (cond.op == CompareOp::kEq) {
      index->Lookup(cond.constant, &candidates);
    } else {
      // Range access path: fold every range condition on the chosen
      // column into one [lower, upper] B-tree probe, so `col > a AND
      // col <= b` is a single LookupRange instead of a half-open probe
      // plus per-row re-filtering of the other bound.
      bool has_lower = false, lower_inclusive = false;
      bool has_upper = false, upper_inclusive = false;
      Value lower, upper;
      for (const ScanCondition& c : conditions) {
        if (c.column != cond.column) continue;
        switch (c.op) {
          case CompareOp::kLt:
          case CompareOp::kLe: {
            bool inclusive = c.op == CompareOp::kLe;
            int cmp = has_upper ? c.constant.Compare(upper) : -1;
            if (!has_upper || cmp < 0 || (cmp == 0 && !inclusive)) {
              upper = c.constant;
              upper_inclusive = inclusive;
              has_upper = true;
            }
            break;
          }
          case CompareOp::kGt:
          case CompareOp::kGe: {
            bool inclusive = c.op == CompareOp::kGe;
            int cmp = has_lower ? c.constant.Compare(lower) : 1;
            if (!has_lower || cmp > 0 || (cmp == 0 && !inclusive)) {
              lower = c.constant;
              lower_inclusive = inclusive;
              has_lower = true;
            }
            break;
          }
          default:
            break;
        }
      }
      index->LookupRange(lower, lower_inclusive, has_lower, upper,
                         upper_inclusive, has_upper, &candidates);
    }
    stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
    stats_.rows_examined.fetch_add(static_cast<int64_t>(candidates.size()),
                                   std::memory_order_relaxed);
    metric_index_lookups_->Increment();
    metric_rows_examined_->Add(static_cast<int64_t>(candidates.size()));
    for (RowId id : candidates) {
      const Row* row = Get(id);
      if (row != nullptr && RowMatches(*row, conditions)) out.push_back(id);
    }
    return out;
  }
  stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
  metric_full_scans_->Increment();
  int64_t examined = 0;
  for (const auto& [id, row] : rows_) {
    ++examined;
    if (RowMatches(row, conditions)) out.push_back(id);
  }
  stats_.rows_examined.fetch_add(examined, std::memory_order_relaxed);
  metric_rows_examined_->Add(examined);
  return out;
}

std::vector<Row> Table::SelectRows(
    const std::vector<ScanCondition>& conditions) const {
  std::vector<Row> out;
  for (RowId id : SelectRowIds(conditions)) out.push_back(*Get(id));
  return out;
}

std::vector<RowId> Table::SelectWhere(const Predicate& predicate) const {
  std::vector<RowId> out;
  stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
  metric_full_scans_->Increment();
  int64_t examined = 0;
  for (const auto& [id, row] : rows_) {
    ++examined;
    if (predicate.Evaluate(row)) out.push_back(id);
  }
  stats_.rows_examined.fetch_add(examined, std::memory_order_relaxed);
  metric_rows_examined_->Add(examined);
  return out;
}

size_t Table::DeleteWhere(const std::vector<ScanCondition>& conditions) {
  std::vector<RowId> ids = SelectRowIds(conditions);
  for (RowId id : ids) {
    Status st = Delete(id);
    (void)st;  // Ids come from the live table; Delete cannot fail here.
  }
  return ids.size();
}

Status Table::RestoreRow(RowId row_id, Row row) {
  if (rows_.count(row_id) != 0) {
    return Status::AlreadyExists("row " + std::to_string(row_id) +
                                 " in table " + schema_.table_name());
  }
  MDV_RETURN_IF_ERROR(ValidateRow(row));
  IndexInsert(row_id, row);
  rows_.emplace(row_id, std::move(row));
  next_row_id_ = std::max(next_row_id_, row_id + 1);
  return Status::OK();
}

Status Table::CheckInvariants() const {
  auto violation = [this](const std::string& what) {
    return Status::Internal("table " + schema_.table_name() +
                            " invariant violated: " + what);
  };
  for (const std::unique_ptr<Index>& index : indexes_) {
    const size_t column = index->column();
    const std::string& column_name = schema_.columns()[column].name;

    // Row-count parity: one index entry per heap row.
    if (index->NumEntries() != rows_.size()) {
      return violation("index on " + column_name + " holds " +
                       std::to_string(index->NumEntries()) +
                       " entries for " + std::to_string(rows_.size()) +
                       " rows");
    }

    // Entry membership: every entry points at a live row whose column
    // value equals the entry key. With count parity this also rules out
    // missing entries. Ordered indexes must visit keys in order — the
    // range scans binary-search on that.
    Status status = Status::OK();
    const Value* previous = nullptr;
    const bool ordered = index->kind() == IndexKind::kBTree;
    index->ForEachEntry([&](const Value& key, RowId row_id) {
      if (!status.ok()) return;
      auto it = rows_.find(row_id);
      if (it == rows_.end()) {
        status = violation("index on " + column_name +
                           " references deleted row " +
                           std::to_string(row_id));
        return;
      }
      if (it->second[column] != key) {
        status = violation("index on " + column_name + " entry for row " +
                           std::to_string(row_id) + " has stale key " +
                           key.ToString());
        return;
      }
      if (ordered && previous != nullptr && key < *previous) {
        status = violation("B-tree on " + column_name +
                           " keys out of order at row " +
                           std::to_string(row_id));
        return;
      }
      previous = &key;
    });
    MDV_RETURN_IF_ERROR(status);

    // Reverse direction: every heap row is reachable through the index.
    std::vector<RowId> hits;
    for (const auto& [row_id, row] : rows_) {
      hits.clear();
      index->Lookup(row[column], &hits);
      if (std::find(hits.begin(), hits.end(), row_id) == hits.end()) {
        return violation("row " + std::to_string(row_id) +
                         " unreachable through the index on " + column_name);
      }
    }
  }
  return Status::OK();
}

void Table::Truncate() {
  if (undo_ != nullptr) {
    for (const auto& [id, row] : rows_) {
      undo_->RecordDelete(this, id, row);
    }
  }
  rows_.clear();
  // Rebuild empty indexes, keeping their definitions.
  for (auto& index : indexes_) {
    index = MakeIndex(index->kind(), index->column());
  }
}

}  // namespace mdv::rdbms
