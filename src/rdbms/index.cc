#include "rdbms/index.h"

namespace mdv::rdbms {

void BTreeIndex::Insert(const Value& key, RowId row_id) {
  entries_.emplace(key, row_id);
}

void BTreeIndex::Remove(const Value& key, RowId row_id) {
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == row_id) {
      entries_.erase(it);
      return;
    }
  }
}

void BTreeIndex::Lookup(const Value& key, std::vector<RowId>* out) const {
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

void BTreeIndex::LookupRange(const Value& lower, bool lower_inclusive,
                             bool has_lower, const Value& upper,
                             bool upper_inclusive, bool has_upper,
                             std::vector<RowId>* out) const {
  if (has_lower && has_upper) {
    // Crossed bounds would put `stop` before `it` below.
    int cmp = lower.Compare(upper);
    if (cmp > 0 || (cmp == 0 && !(lower_inclusive && upper_inclusive))) {
      return;
    }
  }
  auto it = has_lower ? (lower_inclusive ? entries_.lower_bound(lower)
                                         : entries_.upper_bound(lower))
                      : entries_.begin();
  auto stop = has_upper ? (upper_inclusive ? entries_.upper_bound(upper)
                                           : entries_.lower_bound(upper))
                        : entries_.end();
  for (; it != stop; ++it) out->push_back(it->second);
}

void HashIndex::Insert(const Value& key, RowId row_id) {
  entries_.emplace(key, row_id);
}

void HashIndex::Remove(const Value& key, RowId row_id) {
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == row_id) {
      entries_.erase(it);
      return;
    }
  }
}

void HashIndex::Lookup(const Value& key, std::vector<RowId>* out) const {
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

std::unique_ptr<Index> MakeIndex(IndexKind kind, size_t column) {
  if (kind == IndexKind::kBTree) return std::make_unique<BTreeIndex>(column);
  return std::make_unique<HashIndex>(column);
}

}  // namespace mdv::rdbms
