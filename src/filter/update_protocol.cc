#include "filter/update_protocol.h"

#include <algorithm>
#include <set>

#include "filter/data_store.h"

namespace mdv::filter {

Result<FilterRunResult> RegisterDocuments(
    rdbms::Database* db, FilterEngine* engine,
    const std::vector<const rdf::RdfDocument*>& documents) {
  rdf::Statements delta;
  for (const rdf::RdfDocument* doc : documents) {
    rdf::Statements atoms = doc->ToStatements();
    delta.insert(delta.end(), atoms.begin(), atoms.end());
  }
  MDV_RETURN_IF_ERROR(InsertAtoms(db, delta));
  FilterOptions options;
  options.update_materialized = true;
  return engine->Run(delta, options);
}

Result<UpdateOutcome> ApplyDocumentUpdate(rdbms::Database* db,
                                          FilterEngine* engine,
                                          const rdf::RdfDocument& original,
                                          const rdf::RdfDocument& updated) {
  if (original.uri() != updated.uri()) {
    return Status::InvalidArgument(
        "update must re-register the same document: " + original.uri() +
        " vs " + updated.uri());
  }
  UpdateOutcome outcome;
  outcome.diff = rdf::DiffDocuments(original, updated);
  for (const std::string& id : outcome.diff.updated) {
    outcome.updated_uris.push_back(original.UriReferenceOf(id));
  }
  for (const std::string& id : outcome.diff.deleted) {
    outcome.deleted_uris.push_back(original.UriReferenceOf(id));
  }
  for (const std::string& id : outcome.diff.inserted) {
    outcome.inserted_uris.push_back(updated.UriReferenceOf(id));
  }

  std::vector<std::string> changed = outcome.updated_uris;
  changed.insert(changed.end(), outcome.deleted_uris.begin(),
                 outcome.deleted_uris.end());

  // ---- Pass 1: original versions of changed resources as input. -------
  {
    std::set<std::string> changed_ids(outcome.diff.updated.begin(),
                                      outcome.diff.updated.end());
    changed_ids.insert(outcome.diff.deleted.begin(),
                       outcome.diff.deleted.end());
    rdf::Statements delta;
    for (const rdf::Statement& atom : original.ToStatements()) {
      auto [doc_uri, local_id] = rdf::SplitUriReference(atom.subject);
      if (changed_ids.count(local_id) != 0) delta.push_back(atom);
    }
    FilterOptions probe;
    probe.update_materialized = false;
    MDV_ASSIGN_OR_RETURN(outcome.candidates, engine->Run(delta, probe));
  }

  // ---- Write the modified metadata; purge stale materializations. -----
  MDV_RETURN_IF_ERROR(RemoveResourceAtoms(db, changed));
  MDV_RETURN_IF_ERROR(PurgeMaterialized(db, engine->rule_store(),
                                        outcome.candidates.matches));

  rdf::Statements new_delta;
  {
    std::set<std::string> new_ids(outcome.diff.updated.begin(),
                                  outcome.diff.updated.end());
    new_ids.insert(outcome.diff.inserted.begin(),
                   outcome.diff.inserted.end());
    for (const rdf::Statement& atom : updated.ToStatements()) {
      auto [doc_uri, local_id] = rdf::SplitUriReference(atom.subject);
      if (new_ids.count(local_id) != 0) new_delta.push_back(atom);
    }
  }
  MDV_RETURN_IF_ERROR(InsertAtoms(db, new_delta));

  // ---- Pass 3 (run before pass 2, see header): modified metadata. -----
  {
    FilterOptions write;
    write.update_materialized = true;
    MDV_ASSIGN_OR_RETURN(outcome.new_matches, engine->Run(new_delta, write));
    // A match derived from both the original (pass 1) and the modified
    // data is *retained*, not new: the resource "still matches all rules
    // it previously had" (§3.5) and is refreshed via update
    // notifications, not re-inserted. Report only genuinely new pairs.
    for (auto it = outcome.new_matches.matches.begin();
         it != outcome.new_matches.matches.end();) {
      const std::vector<std::string>* before =
          outcome.candidates.MatchesFor(it->first);
      if (before != nullptr) {
        std::set<std::string> old_set(before->begin(), before->end());
        auto& uris = it->second;
        uris.erase(std::remove_if(uris.begin(), uris.end(),
                                  [&](const std::string& uri) {
                                    return old_set.count(uri) != 0;
                                  }),
                   uris.end());
      }
      it = it->second.empty() ? outcome.new_matches.matches.erase(it)
                              : std::next(it);
    }
  }

  // ---- Pass 2: candidate resources against the updated database. ------
  {
    std::set<std::string> candidate_uris;
    for (const auto& [rule_id, uris] : outcome.candidates.matches) {
      candidate_uris.insert(uris.begin(), uris.end());
    }
    rdf::Statements delta = AtomsOfResources(
        *db, {candidate_uris.begin(), candidate_uris.end()});
    FilterOptions probe;
    probe.update_materialized = false;
    MDV_ASSIGN_OR_RETURN(outcome.still_matching, engine->Run(delta, probe));
  }
  return outcome;
}

Result<UpdateOutcome> ApplyDocumentDeletion(rdbms::Database* db,
                                            FilterEngine* engine,
                                            const rdf::RdfDocument& original) {
  rdf::RdfDocument empty(original.uri());
  return ApplyDocumentUpdate(db, engine, original, empty);
}

}  // namespace mdv::filter
