#include "filter/engine.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/string_util.h"
#include "filter/predicate_index.h"
#include "filter/tables.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdbms/table.h"
#include "rdf/document.h"

namespace mdv::filter {

namespace {

/// Registry handles of the filter layer, resolved once. Counters mirror
/// FilterRunStats (accumulated across runs, see the struct docs); the
/// histograms hold per-stage latencies of FilterEngine::Run, matching
/// the span names of the per-run trace.
struct EngineMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& runs = r.GetCounter("mdv.filter.runs_total");
  obs::Counter& delta_atoms = r.GetCounter("mdv.filter.delta_atoms_total");
  obs::Counter& triggering_matches =
      r.GetCounter("mdv.filter.triggering_matches_total");
  obs::Counter& groups_evaluated =
      r.GetCounter("mdv.filter.groups_evaluated_total");
  obs::Counter& members_evaluated =
      r.GetCounter("mdv.filter.members_evaluated_total");
  obs::Counter& join_matches = r.GetCounter("mdv.filter.join_matches_total");
  obs::Counter& index_probes = r.GetCounter("mdv.filter.index_probes_total");
  obs::Counter& index_hits = r.GetCounter("mdv.filter.index_hits_total");
  obs::Counter& scan_fallbacks =
      r.GetCounter("mdv.filter.scan_fallbacks_total");
  obs::Histogram& run_us = r.GetHistogram("mdv.filter.run_us");
  obs::Histogram& initial_iteration_us =
      r.GetHistogram("mdv.filter.initial_iteration_us");
  obs::Histogram& delta_join_us = r.GetHistogram("mdv.filter.delta_join_us");
  obs::Histogram& materialize_us =
      r.GetHistogram("mdv.filter.materialize_us");
  obs::Histogram& evaluate_new_rules_us =
      r.GetHistogram("mdv.filter.evaluate_new_rules_us");

  static EngineMetrics& Get() {
    static EngineMetrics& metrics = *new EngineMetrics();
    return metrics;
  }
};

using rdbms::CompareOp;
using rdbms::Row;
using rdbms::ScanCondition;
using rdbms::Table;
using rdbms::Value;

Value Int(int64_t v) { return Value(v); }
Value Str(std::string s) { return Value(std::move(s)); }

/// A comparison operand parsed once: its text plus the §3.3.4 numeric
/// reconversion (nullopt when the text is not a number). Hot paths parse
/// each rule constant and each delta-atom value a single time instead of
/// once per compared pair.
struct ParsedText {
  explicit ParsedText(const std::string& t)
      : text(t), num(Value{t}.TryNumeric()) {}

  const std::string& text;
  std::optional<double> num;
};

/// Compares two texts under `op`, numerically when both parse as numbers
/// (the reconversion of §3.3.4), lexicographically otherwise.
bool CompareParsed(const ParsedText& lhs, CompareOp op,
                   const ParsedText& rhs) {
  if (op == CompareOp::kContains) return Contains(lhs.text, rhs.text);
  if (lhs.num && rhs.num) {
    return rdbms::EvaluateCompare(Value(*lhs.num), op, Value(*rhs.num));
  }
  return rdbms::EvaluateCompare(Value(lhs.text), op, Value(rhs.text));
}

/// Numeric comparison only; false when either side is not a number.
/// Used for the ordered-operator rule tables, whose constants are
/// numeric by construction (§3.3.4).
bool CompareParsedNumeric(const ParsedText& lhs, CompareOp op,
                          const ParsedText& rhs) {
  if (!lhs.num || !rhs.num) return false;
  return rdbms::EvaluateCompare(Value(*lhs.num), op, Value(*rhs.num));
}

/// Convenience wrapper for cold paths comparing a pair once.
bool CompareTexts(const std::string& lhs, CompareOp op,
                  const std::string& rhs) {
  return CompareParsed(ParsedText(lhs), op, ParsedText(rhs));
}

/// Runs the post-run invariant auditors. On a violation the flight
/// recorder auto-dumps its event ring before the error propagates, so
/// the post-mortem has the pipeline history that led to the corruption.
Status RunInvariantAudits(rdbms::Database* db, RuleStore* store,
                          const char* site) {
  Status status = db->CheckInvariants();
  if (status.ok()) status = store->CheckConsistency();
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  if (!status.ok()) {
    recorder.Record(obs::FlightEventType::kAuditFail, 0, 0, 0,
                    status.message());
    recorder.AutoDump("invariant_audit");
    return status;
  }
  recorder.Record(obs::FlightEventType::kAuditPass, 0, 0, 0, site);
  return status;
}

}  // namespace

bool AuditInvariantsEnabled() {
  // Read-only env access; nothing in the process calls setenv.
  static const bool enabled =
      std::getenv("MDV_AUDIT_INVARIANTS") != nullptr;  // NOLINT(concurrency-mt-unsafe)
  return enabled;
}

FilterEngine::GroupedDelta FilterEngine::GroupDelta(
    const rdf::Statements& delta) {
  // Group the delta atoms by (class, property) and by value within each
  // group: every distinct (class, property) pays one bucket lookup and
  // every distinct value one probe, however many atoms carry it (batch
  // registrations repeat properties heavily). Subjects are referenced,
  // not copied; `delta` outlives the grouping.
  GroupedDelta groups;
  for (const rdf::Statement& atom : delta) {
    groups[{atom.subject_class, atom.predicate}][atom.object.text()]
        .push_back(&atom.subject);
  }
  return groups;
}

Status FilterEngine::MatchTriggeringRules(
    int shard, const rdf::Statements& delta, const GroupedDelta& grouped,
    const FilterOptions& options, FilterRunStats* stats,
    std::map<int64_t, MatchSet>* current) const {
  if (options.use_predicate_index) {
    return MatchTriggeringRulesIndexed(shard, grouped, stats, current);
  }
  return MatchTriggeringRulesScan(shard, delta, stats, current);
}

Status FilterEngine::MatchTriggeringRulesIndexed(
    int shard, const GroupedDelta& grouped, FilterRunStats* stats,
    std::map<int64_t, MatchSet>* current) const {
  obs::ScopedSpan span("filter.index_probe");
  const PredicateIndex& index = store_->predicate_index(shard);

  auto add = [&](int64_t rule_id, const std::string& uri) {
    (*current)[rule_id].insert(uri);
    ++stats->index_hits;
  };

  std::vector<int64_t> matched;
  for (const auto& [key, subjects_by_text] : grouped) {
    const std::string& cls = key.first;
    const std::string& prop = key.second;

    // Predicate-less triggering rules match any resource of their class;
    // drive them from the synthetic rdf#subject atom (one per resource).
    if (prop == rdf::kRdfSubjectProperty) {
      matched.clear();
      index.MatchClass(cls, &matched);
      if (!matched.empty()) {
        for (const auto& [text, subjects] : subjects_by_text) {
          for (const std::string* subject : subjects) {
            for (int64_t rule_id : matched) add(rule_id, *subject);
          }
        }
      }
    }

    const PredicateIndex::Bucket* bucket = index.FindBucket(cls, prop);
    if (bucket == nullptr) continue;
    for (const auto& [text, subjects] : subjects_by_text) {
      ParsedText value(text);
      matched.clear();
      index.Match(*bucket, value.text, value.num, &matched);
      ++stats->index_probes;
      for (int64_t rule_id : matched) {
        for (const std::string* subject : subjects) add(rule_id, *subject);
      }
    }
  }
  span.AddAttribute("probes", stats->index_probes);
  span.AddAttribute("hits", stats->index_hits);
  return Status::OK();
}

Status FilterEngine::MatchTriggeringRulesScan(
    int shard, const rdf::Statements& delta, FilterRunStats* stats,
    std::map<int64_t, MatchSet>* current) const {
  obs::ScopedSpan span("filter.table_scan");
  const Table* cls_rules =
      db_->GetTable(ShardTableName(kFilterRulesCLS, shard));
  const Table* eqs = db_->GetTable(ShardTableName(kFilterRulesEQS, shard));

  auto add = [&](int64_t rule_id, const std::string& uri) {
    (*current)[rule_id].insert(uri);
  };

  for (const rdf::Statement& atom : delta) {
    const std::string& cls = atom.subject_class;
    const std::string& prop = atom.predicate;
    const std::string text = atom.object.text();
    ParsedText value(text);
    ++stats->scan_fallbacks;

    // Predicate-less triggering rules match any resource of their class;
    // drive them from the synthetic rdf#subject atom (one per resource).
    if (prop == rdf::kRdfSubjectProperty) {
      for (const Row& row : cls_rules->SelectRows(
               {ScanCondition{1, CompareOp::kEq, Str(cls)}})) {
        add(row[0].as_int(), atom.subject);
      }
    }

    // String equality: one point lookup on the value index. This is the
    // access path that makes OID rules independent of the rule base size
    // (Figure 11).
    for (const Row& row : eqs->SelectRows(
             {ScanCondition{FilterRulesCols::kValue, CompareOp::kEq,
                            Str(text)},
              ScanCondition{FilterRulesCols::kClass, CompareOp::kEq,
                            Str(cls)},
              ScanCondition{FilterRulesCols::kProperty, CompareOp::kEq,
                            Str(prop)}})) {
      add(row[FilterRulesCols::kRuleId].as_int(), atom.subject);
    }

    // Operator tables are probed by property and the constant is
    // reconverted per row (§3.3.4) — their cost grows with the number of
    // rules on the same property (Figures 12-15).
    for (const OperatorTableInfo& info : OperatorTableInfos()) {
      if (std::string(info.table) == kFilterRulesEQS) continue;  // Above.
      for (const Row& row :
           db_->GetTable(ShardTableName(info.table, shard))
               ->SelectRows(
               {ScanCondition{FilterRulesCols::kProperty, CompareOp::kEq,
                              Str(prop)},
                ScanCondition{FilterRulesCols::kClass, CompareOp::kEq,
                              Str(cls)}})) {
        ParsedText constant(row[FilterRulesCols::kValue].as_string());
        bool matched = info.numeric_only
                           ? CompareParsedNumeric(value, info.op, constant)
                           : CompareParsed(value, info.op, constant);
        if (matched) {
          add(row[FilterRulesCols::kRuleId].as_int(), atom.subject);
        }
      }
    }
  }
  return Status::OK();
}

std::vector<std::string> FilterEngine::MaterializedOf(int64_t rule_id) const {
  const Table* mat = db_->GetTable(
      ShardTableName(kMaterializedResults, store_->ShardOf(rule_id)));
  std::vector<std::string> out;
  for (const Row& row : mat->SelectRows({ScanCondition{
           ResultCols::kRuleId, CompareOp::kEq, Int(rule_id)}})) {
    out.push_back(row[ResultCols::kUri].as_string());
  }
  return out;
}

std::vector<std::string> FilterEngine::SideValues(
    const std::string& uri, const std::string& property) const {
  if (property.empty()) return {uri};
  const Table* data = db_->GetTable(kFilterData);
  std::vector<std::string> out;
  for (const Row& row : data->SelectRows(
           {ScanCondition{FilterDataCols::kUri, CompareOp::kEq, Str(uri)},
            ScanCondition{FilterDataCols::kProperty, CompareOp::kEq,
                          Str(property)}})) {
    out.push_back(row[FilterDataCols::kValue].as_string());
  }
  return out;
}

std::vector<std::string> FilterEngine::PartnersByValue(
    const std::string& value, const std::string& property,
    const std::string& partner_class) const {
  if (property.empty()) return {value};  // The value *is* the partner uri.
  const Table* data = db_->GetTable(kFilterData);
  std::vector<std::string> out;
  for (const Row& row : data->SelectRows(
           {ScanCondition{FilterDataCols::kValue, CompareOp::kEq, Str(value)},
            ScanCondition{FilterDataCols::kProperty, CompareOp::kEq,
                          Str(property)},
            ScanCondition{FilterDataCols::kClass, CompareOp::kEq,
                          Str(partner_class)}})) {
    out.push_back(row[FilterDataCols::kUri].as_string());
  }
  return out;
}

Status FilterEngine::AppendMaterialized(int64_t rule_id,
                                        const std::vector<std::string>& uris) {
  Table* mat = db_->GetTable(
      ShardTableName(kMaterializedResults, store_->ShardOf(rule_id)));
  std::vector<Row> rows;
  rows.reserve(uris.size());
  for (const std::string& uri : uris) {
    rows.push_back({Str(uri), Int(rule_id)});
  }
  return mat->InsertRows(std::move(rows));
}

Status FilterEngine::WriteResultObjects(
    int shard, const std::map<int64_t, MatchSet>& current) {
  Table* ro = db_->GetTable(ShardTableName(kResultObjects, shard));
  ro->Truncate();
  std::vector<Row> rows;
  for (const auto& [rule_id, uris] : current) {
    for (const std::string& uri : uris) {
      rows.push_back({Str(uri), Int(rule_id)});
    }
  }
  return ro->InsertRows(std::move(rows));
}

Status FilterEngine::WriteMergedResultObjects(const FilterRunResult& result) {
  Table* ro = db_->GetTable(kResultObjects);
  ro->Truncate();
  std::vector<Row> rows;
  for (const auto& [rule_id, uris] : result.matches) {
    for (const std::string& uri : uris) {  // Already sorted per rule.
      rows.push_back({Str(uri), Int(rule_id)});
    }
  }
  return ro->InsertRows(std::move(rows));
}

Result<FilterRunResult> FilterEngine::Run(const rdf::Statements& delta,
                                          const FilterOptions& options) {
  EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedSpan run_span("filter.run", &metrics.run_us);
  FilterRunResult result;
  result.stats.delta_atoms = static_cast<int64_t>(delta.size());
  run_span.AddAttribute("delta_atoms", result.stats.delta_atoms);

  const int total_shards = store_->total_shards();
  const GroupedDelta grouped =
      options.use_predicate_index ? GroupDelta(delta) : GroupedDelta{};
  if (total_shards == 1) {
    MDV_RETURN_IF_ERROR(RunShard(0, delta, grouped, options, nullptr,
                                 run_span.context(), &result));
  } else {
    // Fan the regular shards out (work-stealing pool when configured and
    // outside a transaction — the undo log is not thread-safe), then run
    // the overflow shard, then merge deterministically.
    const int regular = store_->num_shards();
    std::vector<FilterRunResult> outcomes(static_cast<size_t>(regular));
    std::vector<Status> statuses(static_cast<size_t>(regular), Status::OK());
    const bool parallel = pool_ != nullptr && !db_->InTransaction();
    // Capture the run span's context for the shard tasks: pool workers
    // have an empty thread-local span stack, so without the explicit
    // parent every filter.shard_run span would start a detached trace.
    const obs::SpanContext run_context = run_span.context();
    if (parallel) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(static_cast<size_t>(regular));
      for (int shard = 0; shard < regular; ++shard) {
        tasks.push_back([this, shard, run_context, &delta, &grouped, &options,
                         &outcomes, &statuses] {
          statuses[static_cast<size_t>(shard)] =
              RunShard(shard, delta, grouped, options, nullptr, run_context,
                       &outcomes[static_cast<size_t>(shard)]);
        });
      }
      pool_->Run(std::move(tasks));
    } else {
      for (int shard = 0; shard < regular; ++shard) {
        statuses[static_cast<size_t>(shard)] =
            RunShard(shard, delta, grouped, options, nullptr, run_context,
                     &outcomes[static_cast<size_t>(shard)]);
      }
    }
    for (const Status& status : statuses) MDV_RETURN_IF_ERROR(status);

    // Overflow pass: rules whose atoms span shards run last, seeded with
    // the regular shards' fresh matches (their inputs can live in any
    // shard). Skipped when no rule spans shards.
    const int overflow = store_->overflow_shard();
    if (store_->ShardRuleCount(overflow) > 0) {
      ForeignSeeds seeds;
      for (const FilterRunResult& outcome : outcomes) {
        for (const auto& [rule_id, uris] : outcome.matches) {
          for (const RuleStore::Dependent& dep :
               store_->DependentsOf(rule_id)) {
            if (store_->ShardOf(dep.target) == overflow) {
              seeds[rule_id] = uris;
              break;
            }
          }
        }
      }
      FilterRunResult overflow_outcome;
      MDV_RETURN_IF_ERROR(RunShard(overflow, delta, grouped, options, &seeds,
                                   run_context, &overflow_outcome));
      outcomes.push_back(std::move(overflow_outcome));
    }

    // Deterministic merge: shards own disjoint rule sets, so collecting
    // into the result map yields stable rule-id order regardless of
    // shard completion order; stats sum, iterations take the deepest
    // shard.
    for (FilterRunResult& outcome : outcomes) {
      for (auto& [rule_id, uris] : outcome.matches) {
        result.matches[rule_id] = std::move(uris);
      }
      result.iterations = std::max(result.iterations, outcome.iterations);
      result.stats.triggering_matches += outcome.stats.triggering_matches;
      result.stats.groups_evaluated += outcome.stats.groups_evaluated;
      result.stats.members_evaluated += outcome.stats.members_evaluated;
      result.stats.join_matches += outcome.stats.join_matches;
      result.stats.index_probes += outcome.stats.index_probes;
      result.stats.index_hits += outcome.stats.index_hits;
      result.stats.scan_fallbacks += outcome.stats.scan_fallbacks;
    }
    MDV_RETURN_IF_ERROR(WriteMergedResultObjects(result));
  }

  // Mirror the run's counters into the process-wide registry (the
  // accumulating view of FilterRunStats; see the struct docs).
  metrics.runs.Increment();
  metrics.delta_atoms.Add(result.stats.delta_atoms);
  metrics.triggering_matches.Add(result.stats.triggering_matches);
  metrics.groups_evaluated.Add(result.stats.groups_evaluated);
  metrics.members_evaluated.Add(result.stats.members_evaluated);
  metrics.join_matches.Add(result.stats.join_matches);
  metrics.index_probes.Add(result.stats.index_probes);
  metrics.index_hits.Add(result.stats.index_hits);
  metrics.scan_fallbacks.Add(result.stats.scan_fallbacks);
  run_span.AddAttribute("iterations",
                        static_cast<int64_t>(result.iterations));
  run_span.AddAttribute("triggering_matches",
                        result.stats.triggering_matches);
  run_span.AddAttribute("join_matches", result.stats.join_matches);

  if (options.audit_invariants || AuditInvariantsEnabled()) {
    MDV_RETURN_IF_ERROR(RunInvariantAudits(db_, store_, "filter.run"));
  }
  return result;
}

Status FilterEngine::RunShard(int shard, const rdf::Statements& delta,
                              const GroupedDelta& grouped,
                              const FilterOptions& options,
                              const ForeignSeeds* foreign_seeds,
                              obs::SpanContext parent, FilterRunResult* out) {
  EngineMetrics& metrics = EngineMetrics::Get();
  FilterRunResult& result = *out;
  const bool sharded = store_->total_shards() > 1;

  // Per-shard observability: a span per shard pass (parented explicitly
  // to the filter.run span — the thread-local stack is empty on pool
  // workers) and `mdv.filter.shard.<k>.*` counters. Emitted only when
  // sharding is on, so the single-shard profile stays identical to the
  // paper's engine.
  std::optional<obs::ScopedSpan> shard_span;
  if (sharded) {
    shard_span.emplace("filter.shard_run", parent);
    shard_span->AddAttribute("shard", static_cast<int64_t>(shard));
    shard_span->AddAttribute("shard_rules", store_->ShardRuleCount(shard));
    obs::FlightRecorder::Default().Record(
        obs::FlightEventType::kShardPassBegin, shard,
        static_cast<int64_t>(delta.size()));
  }
  std::set<int64_t> foreign_rules;
  std::map<int64_t, MatchSet> all_matches;

  // Per-run snapshot of MaterializedResults, loaded once per affected
  // rule (replacing a point query per (rule, uri) pair) and kept in sync
  // with this run's own appends.
  std::unordered_map<int64_t, MatchSet> materialized_cache;
  auto materialized_of = [&](int64_t rule_id) -> const MatchSet& {
    auto it = materialized_cache.find(rule_id);
    if (it == materialized_cache.end()) {
      std::vector<std::string> uris = MaterializedOf(rule_id);
      it = materialized_cache
               .emplace(rule_id, MatchSet(uris.begin(), uris.end()))
               .first;
    }
    return it->second;
  };
  auto append_materialized = [&](int64_t rule_id,
                                 const MatchSet& uris) -> Status {
    MDV_RETURN_IF_ERROR(
        AppendMaterialized(rule_id, {uris.begin(), uris.end()}));
    auto it = materialized_cache.find(rule_id);
    if (it != materialized_cache.end()) {
      it->second.insert(uris.begin(), uris.end());
    }
    return Status::OK();
  };

  // ---- Initial iteration: determine affected triggering rules. --------
  std::map<int64_t, MatchSet> current;
  {
    obs::ScopedSpan init_span("filter.initial_iteration",
                              &metrics.initial_iteration_us);
    MDV_RETURN_IF_ERROR(
        MatchTriggeringRules(shard, delta, grouped, options, &result.stats,
                             &current));

    if (options.update_materialized) {
      // Suppress matches that were derived (and published) by earlier
      // runs.
      for (auto it = current.begin(); it != current.end();) {
        MatchSet& uris = it->second;
        const MatchSet& materialized = materialized_of(it->first);
        if (!materialized.empty()) {
          for (auto uit = uris.begin(); uit != uris.end();) {
            if (materialized.count(*uit) != 0) {
              uit = uris.erase(uit);
            } else {
              ++uit;
            }
          }
        }
        it = uris.empty() ? current.erase(it) : std::next(it);
      }
    }
    init_span.AddAttribute("affected_rules",
                           static_cast<int64_t>(current.size()));
  }

  for (const auto& [rule_id, uris] : current) {
    result.stats.triggering_matches += static_cast<int64_t>(uris.size());
  }

  // Seed the overflow pass with the regular shards' fresh matches: they
  // drive the join agenda like local triggering matches, but stay out of
  // the stats, the materialization and the output (their own shard
  // already accounted for them).
  if (foreign_seeds != nullptr) {
    for (const auto& [rule_id, uris] : *foreign_seeds) {
      foreign_rules.insert(rule_id);
      current[rule_id].insert(uris.begin(), uris.end());
    }
  }

  // Reverse index of this run's matches (uri → rules), used by the
  // grouped join evaluation to split combined results back to members.
  std::unordered_map<std::string, std::set<int64_t>> run_rules_of_uri;

  // All rules whose result set contains `uri`: this run's matches plus
  // the materialized state (one indexed lookup per table). A regular
  // shard only ever joins rules it owns; the overflow shard joins rules
  // of any shard, so it consults every shard's MaterializedResults.
  std::vector<const rdbms::Table*> materialized_tables;
  if (sharded && shard == store_->overflow_shard()) {
    for (int s = 0; s < store_->total_shards(); ++s) {
      materialized_tables.push_back(
          db_->GetTable(ShardTableName(kMaterializedResults, s)));
    }
  } else {
    materialized_tables.push_back(
        db_->GetTable(ShardTableName(kMaterializedResults, shard)));
  }
  auto rules_containing = [&](const std::string& uri) {
    std::set<int64_t> rules;
    auto rit = run_rules_of_uri.find(uri);
    if (rit != run_rules_of_uri.end()) rules = rit->second;
    for (const rdbms::Table* table : materialized_tables) {
      for (const Row& row : table->SelectRows(
               {ScanCondition{ResultCols::kUri, CompareOp::kEq, Value(uri)}})) {
        rules.insert(row[ResultCols::kRuleId].as_int());
      }
    }
    return rules;
  };

  // ---- Iterate join-rule evaluation until no new matches. --------------
  while (!current.empty()) {
    {
      // Materialization: mirror the iteration's matches into
      // ResultObjects and append them to MaterializedResults.
      obs::ScopedSpan mat_span("filter.materialize",
                               &metrics.materialize_us);
      MDV_RETURN_IF_ERROR(WriteResultObjects(shard, current));
      for (const auto& [rule_id, uris] : current) {
        MatchSet& sink = all_matches[rule_id];
        sink.insert(uris.begin(), uris.end());
        for (const std::string& uri : uris) {
          run_rules_of_uri[uri].insert(rule_id);
        }
      }
      if (options.update_materialized) {
        for (const auto& [rule_id, uris] : current) {
          if (foreign_rules.count(rule_id) != 0) continue;  // Owner did it.
          if (store_->HasDependents(rule_id)) {
            MDV_RETURN_IF_ERROR(append_materialized(rule_id, uris));
          }
        }
      }
    }

    // Agenda: rule groups with at least one member receiving new input.
    // Only members of this shard are evaluated here; dependents placed
    // in the overflow shard are reached by the overflow pass through its
    // foreign seeds.
    std::map<int64_t, std::set<int64_t>> agenda;
    for (const auto& [rule_id, uris] : current) {
      for (const RuleStore::Dependent& dep : store_->DependentsOf(rule_id)) {
        if (store_->ShardOf(dep.target) != shard) continue;
        agenda[dep.group_id].insert(dep.target);
      }
    }
    if (agenda.empty()) break;
    ++result.iterations;

    obs::ScopedSpan join_span("filter.delta_join", &metrics.delta_join_us);
    join_span.AddAttribute("iteration",
                           static_cast<int64_t>(result.iterations));
    join_span.AddAttribute("groups", static_cast<int64_t>(agenda.size()));

    std::map<int64_t, MatchSet> next;
    for (const auto& [group_id, members] : agenda) {
      ++result.stats.groups_evaluated;
      result.stats.members_evaluated += static_cast<int64_t>(members.size());
      MDV_ASSIGN_OR_RETURN(RuleStore::GroupSpec spec,
                           store_->GroupSpecOf(group_id));

      // Member wiring: which (left, right) input pairs feed which
      // members. Splitting the combined result back to members is a map
      // lookup per candidate pair (§3.3.3, Figure 6).
      std::map<std::pair<int64_t, int64_t>, std::vector<int64_t>>
          members_by_children;
      std::set<int64_t> left_children;
      std::set<int64_t> right_children;
      std::map<int64_t, RuleStore::JoinInputs> inputs_of;
      for (int64_t member : members) {
        MDV_ASSIGN_OR_RETURN(RuleStore::JoinInputs inputs,
                             store_->InputsOf(member));
        members_by_children[{inputs.left, inputs.right}].push_back(member);
        left_children.insert(inputs.left);
        right_children.insert(inputs.right);
        inputs_of.emplace(member, inputs);
      }

      std::map<int64_t, MatchSet> out;  // member → registered resources.

      // Routes one joined pair to every member whose inputs contain the
      // two resources.
      auto emit_pair = [&](const std::string& left_uri,
                           const std::string& right_uri) {
        std::set<int64_t> lrules = rules_containing(left_uri);
        std::set<int64_t> rrules = rules_containing(right_uri);
        const std::string& registered =
            spec.register_side == 0 ? left_uri : right_uri;
        for (int64_t lc : lrules) {
          if (left_children.count(lc) == 0) continue;
          for (int64_t rc : rrules) {
            if (right_children.count(rc) == 0) continue;
            auto mit = members_by_children.find({lc, rc});
            if (mit == members_by_children.end()) continue;
            for (int64_t member : mit->second) {
              out[member].insert(registered);
            }
          }
        }
      };

      if (spec.op == CompareOp::kEq) {
        // Combined, delta-driven equality join, evaluated once for the
        // whole group: resources newly matched this iteration on either
        // side produce candidate pairs via the shared join predicate;
        // the pairs are split to members afterwards.
        auto drive = [&](bool new_is_left) {
          const std::set<int64_t>& children =
              new_is_left ? left_children : right_children;
          const std::string& new_prop =
              new_is_left ? spec.lhs_property : spec.rhs_property;
          const std::string& other_prop =
              new_is_left ? spec.rhs_property : spec.lhs_property;
          const std::string& other_class =
              new_is_left ? spec.right_class : spec.left_class;
          MatchSet new_uris;
          for (int64_t child : children) {
            auto cit = current.find(child);
            if (cit == current.end()) continue;
            new_uris.insert(cit->second.begin(), cit->second.end());
          }
          for (const std::string& uri : new_uris) {
            for (const std::string& value : SideValues(uri, new_prop)) {
              for (const std::string& partner :
                   PartnersByValue(value, other_prop, other_class)) {
                if (new_is_left) {
                  emit_pair(uri, partner);
                } else {
                  emit_pair(partner, uri);
                }
              }
            }
          }
        };
        drive(/*new_is_left=*/true);
        drive(/*new_is_left=*/false);
      } else {
        // Non-equality joins cannot use the reverse value lookup; they
        // scan the other side's results per member (rare in practice).
        for (int64_t member : members) {
          const RuleStore::JoinInputs& inputs = inputs_of.at(member);
          auto drive = [&](int64_t new_child, int64_t other_child,
                           bool new_is_left) {
            auto it = current.find(new_child);
            if (it == current.end()) return;
            const std::string& new_prop =
                new_is_left ? spec.lhs_property : spec.rhs_property;
            const std::string& other_prop =
                new_is_left ? spec.rhs_property : spec.lhs_property;
            const bool register_new_side =
                (spec.register_side == 0) == new_is_left;
            const MatchSet& mat_others = materialized_of(other_child);
            std::vector<std::string> others(mat_others.begin(),
                                            mat_others.end());
            auto oit = all_matches.find(other_child);
            if (oit != all_matches.end()) {
              others.insert(others.end(), oit->second.begin(),
                            oit->second.end());
            }
            for (const std::string& uri : it->second) {
              for (const std::string& value : SideValues(uri, new_prop)) {
                for (const std::string& partner : others) {
                  for (const std::string& pv :
                       SideValues(partner, other_prop)) {
                    bool ok = new_is_left ? CompareTexts(value, spec.op, pv)
                                          : CompareTexts(pv, spec.op, value);
                    if (ok) {
                      out[member].insert(register_new_side ? uri : partner);
                    }
                  }
                }
              }
            }
          };
          drive(inputs.left, inputs.right, /*new_is_left=*/true);
          drive(inputs.right, inputs.left, /*new_is_left=*/false);
        }
      }

      // Keep only matches that are new per member.
      for (auto& [member, uris] : out) {
        MatchSet fresh;
        for (const std::string& uri : uris) {
          auto known = all_matches.find(member);
          if (known != all_matches.end() && known->second.count(uri) != 0) {
            continue;
          }
          if (options.update_materialized &&
              materialized_of(member).count(uri) != 0) {
            continue;
          }
          fresh.insert(uri);
        }
        if (!fresh.empty()) {
          result.stats.join_matches += static_cast<int64_t>(fresh.size());
          next[member].insert(fresh.begin(), fresh.end());
        }
      }
    }
    current = std::move(next);
  }

  for (auto& [rule_id, uris] : all_matches) {
    if (foreign_rules.count(rule_id) != 0) continue;  // Owner reports it.
    result.matches[rule_id] =
        std::vector<std::string>(uris.begin(), uris.end());
    std::sort(result.matches[rule_id].begin(), result.matches[rule_id].end());
  }

  if (sharded) {
    obs::MetricsRegistry& registry = obs::DefaultMetrics();
    const std::string prefix =
        "mdv.filter.shard." + std::to_string(shard) + ".";
    registry.GetCounter(prefix + "runs_total").Increment();
    registry.GetCounter(prefix + "triggering_matches_total")
        .Add(result.stats.triggering_matches);
    registry.GetCounter(prefix + "join_matches_total")
        .Add(result.stats.join_matches);
    shard_span->AddAttribute("iterations",
                             static_cast<int64_t>(result.iterations));
    shard_span->AddAttribute("triggering_matches",
                             result.stats.triggering_matches);
    shard_span->AddAttribute("join_matches", result.stats.join_matches);
    obs::FlightRecorder::Default().Record(
        obs::FlightEventType::kShardPassEnd, shard,
        static_cast<int64_t>(result.matches.size()),
        static_cast<int64_t>(result.iterations));
  }
  return Status::OK();
}

Result<FilterRunResult> FilterEngine::EvaluateNewRules(
    const std::vector<int64_t>& new_rules) {
  obs::ScopedSpan span("filter.evaluate_new_rules",
                       &EngineMetrics::Get().evaluate_new_rules_us);
  span.AddAttribute("new_rules", static_cast<int64_t>(new_rules.size()));
  FilterRunResult result;
  const std::unordered_set<int64_t> new_rule_set(new_rules.begin(),
                                                 new_rules.end());

  // Group the new rules by owning shard, preserving the
  // children-before-parents order within each group. One registration's
  // tree lives in a single shard, so there is usually one group; batch
  // registrations fan out like Run does. The overflow group must run
  // last and alone: ensuring a never-materialized input of an overflow
  // rule can write another shard's MaterializedResults.
  std::map<int, std::vector<int64_t>> by_shard;
  for (int64_t rule_id : new_rules) {
    by_shard[store_->ShardOf(rule_id)].push_back(rule_id);
  }

  auto evaluate_group = [this, &new_rule_set](
                            const std::vector<int64_t>& group_rules,
                            FilterRunResult* group_out) -> Status {
    std::map<int64_t, MatchSet> fresh;
    const Table* atomic = db_->GetTable(kAtomicRules);
    const Table* data = db_->GetTable(kFilterData);

    // Returns the full result set of `rule_id`, evaluating it from
    // scratch (recursively) when it is new or was never materialized.
    std::function<Result<MatchSet>(int64_t)> ensure =
        [&](int64_t rule_id) -> Result<MatchSet> {
      auto fit = fresh.find(rule_id);
      if (fit != fresh.end()) return fit->second;
      std::vector<std::string> mat = MaterializedOf(rule_id);
      bool is_new = new_rule_set.count(rule_id) != 0;
      if (!is_new && !mat.empty()) {
        return MatchSet(mat.begin(), mat.end());
      }
      const int shard = store_->ShardOf(rule_id);

      std::vector<Row> rows = atomic->SelectRows({ScanCondition{
          AtomicRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
      if (rows.empty()) {
        return Status::NotFound("atomic rule " + std::to_string(rule_id));
      }
      const Row& rule = rows[0];
      MatchSet out;

      if (rule[AtomicRulesCols::kKind].as_string() == "T") {
        // Reconstruct the triggering spec from the owning shard's
        // FilterRules tables and evaluate it over the full FilterData
        // contents.
        const std::string& cls = rule[AtomicRulesCols::kType].as_string();
        auto scan_rule_rows = [&](const std::string& table_name, CompareOp op,
                                  bool numeric_only) {
          const Table* table = db_->GetTable(ShardTableName(table_name, shard));
        for (const Row& rrow : table->SelectRows({ScanCondition{
                 FilterRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}})) {
          const std::string& prop =
              rrow[FilterRulesCols::kProperty].as_string();
          // Parse the rule constant once, not once per probed data row.
          ParsedText constant(rrow[FilterRulesCols::kValue].as_string());
          if (numeric_only && !constant.num) continue;  // Can never match.
          for (const Row& drow : data->SelectRows(
                   {ScanCondition{FilterDataCols::kProperty, CompareOp::kEq,
                                  Str(prop)},
                    ScanCondition{FilterDataCols::kClass, CompareOp::kEq,
                                  Str(cls)}})) {
            ParsedText text(drow[FilterDataCols::kValue].as_string());
            bool matched = numeric_only
                               ? CompareParsedNumeric(text, op, constant)
                               : CompareParsed(text, op, constant);
            if (matched) {
              out.insert(drow[FilterDataCols::kUri].as_string());
            }
          }
        }
      };
      // Predicate-less class rules.
      const Table* cls_rules =
          db_->GetTable(ShardTableName(kFilterRulesCLS, shard));
      if (!cls_rules
               ->SelectRowIds({ScanCondition{FilterRulesCols::kRuleId,
                                             CompareOp::kEq, Int(rule_id)}})
               .empty()) {
        for (const Row& drow : data->SelectRows(
                 {ScanCondition{FilterDataCols::kProperty, CompareOp::kEq,
                                Str(rdf::kRdfSubjectProperty)},
                  ScanCondition{FilterDataCols::kClass, CompareOp::kEq,
                                Str(cls)}})) {
          out.insert(drow[FilterDataCols::kUri].as_string());
        }
      }
      for (const OperatorTableInfo& info : OperatorTableInfos()) {
        scan_rule_rows(info.table, info.op, info.numeric_only);
      }
    } else {
      // Join rule: evaluate over the full results of both children.
      MDV_ASSIGN_OR_RETURN(RuleStore::JoinInputs inputs,
                           store_->InputsOf(rule_id));
      MDV_ASSIGN_OR_RETURN(
          RuleStore::GroupSpec spec,
          store_->GroupSpecOf(rule[AtomicRulesCols::kGroupId].as_int()));
      MDV_ASSIGN_OR_RETURN(MatchSet left, ensure(inputs.left));
      MDV_ASSIGN_OR_RETURN(MatchSet right, ensure(inputs.right));
      for (const std::string& uri : left) {
        for (const std::string& value : SideValues(uri, spec.lhs_property)) {
          if (spec.op == CompareOp::kEq) {
            for (const std::string& partner :
                 PartnersByValue(value, spec.rhs_property,
                                 spec.right_class)) {
              if (right.count(partner) != 0) {
                out.insert(spec.register_side == 0 ? uri : partner);
              }
            }
          } else {
            for (const std::string& partner : right) {
              for (const std::string& pv :
                   SideValues(partner, spec.rhs_property)) {
                if (CompareTexts(value, spec.op, pv)) {
                  out.insert(spec.register_side == 0 ? uri : partner);
                }
              }
            }
          }
        }
      }
    }

    fresh[rule_id] = out;
    if (store_->HasDependents(rule_id) && !out.empty()) {
      // Materialize only rows not present yet (a re-evaluated rule may
      // already be partially materialized); `mat` was snapshotted above,
      // so the check is a set probe, not a point query per uri.
      const MatchSet materialized(mat.begin(), mat.end());
      std::vector<std::string> missing;
      for (const std::string& uri : out) {
        if (materialized.count(uri) == 0) missing.push_back(uri);
      }
      MDV_RETURN_IF_ERROR(AppendMaterialized(rule_id, missing));
    }
    return out;
    };

    for (int64_t rule_id : group_rules) {
      MDV_ASSIGN_OR_RETURN(MatchSet matches, ensure(rule_id));
      group_out->matches[rule_id] =
          std::vector<std::string>(matches.begin(), matches.end());
      std::sort(group_out->matches[rule_id].begin(),
                group_out->matches[rule_id].end());
    }
    return Status::OK();
  };

  // Regular-shard groups touch only their own shard's tables (plus
  // read-only global tables), so they can fan out on the pool; the
  // overflow group runs afterwards on the calling thread.
  std::vector<std::pair<int, const std::vector<int64_t>*>> regular_groups;
  const std::vector<int64_t>* overflow_group = nullptr;
  for (const auto& [shard, group_rules] : by_shard) {
    if (store_->total_shards() > 1 && shard == store_->overflow_shard()) {
      overflow_group = &group_rules;
    } else {
      regular_groups.emplace_back(shard, &group_rules);
    }
  }
  std::vector<FilterRunResult> outcomes(regular_groups.size());
  std::vector<Status> statuses(regular_groups.size(), Status::OK());
  if (pool_ != nullptr && regular_groups.size() > 1 &&
      !db_->InTransaction()) {
    // As in Run's fan-out: carry the enclosing span's context into the
    // pool tasks so their spans stay inside this trace.
    const obs::SpanContext parent = span.context();
    std::vector<std::function<void()>> tasks;
    tasks.reserve(regular_groups.size());
    for (size_t i = 0; i < regular_groups.size(); ++i) {
      tasks.push_back([&, parent, i] {
        obs::ScopedSpan group_span("filter.new_rules_group", parent);
        group_span.AddAttribute("shard",
                                static_cast<int64_t>(regular_groups[i].first));
        statuses[i] = evaluate_group(*regular_groups[i].second, &outcomes[i]);
      });
    }
    pool_->Run(std::move(tasks));
  } else {
    for (size_t i = 0; i < regular_groups.size(); ++i) {
      statuses[i] = evaluate_group(*regular_groups[i].second, &outcomes[i]);
    }
  }
  for (const Status& status : statuses) MDV_RETURN_IF_ERROR(status);
  if (overflow_group != nullptr) {
    FilterRunResult overflow_outcome;
    MDV_RETURN_IF_ERROR(evaluate_group(*overflow_group, &overflow_outcome));
    outcomes.push_back(std::move(overflow_outcome));
  }
  for (FilterRunResult& outcome : outcomes) {
    for (auto& [rule_id, uris] : outcome.matches) {
      result.matches[rule_id] = std::move(uris);
    }
  }

  if (AuditInvariantsEnabled()) {
    MDV_RETURN_IF_ERROR(
        RunInvariantAudits(db_, store_, "filter.evaluate_new_rules"));
  }
  return result;
}

}  // namespace mdv::filter
