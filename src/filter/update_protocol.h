#ifndef MDV_FILTER_UPDATE_PROTOCOL_H_
#define MDV_FILTER_UPDATE_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "filter/engine.h"
#include "rdf/diff.h"
#include "rdf/document.h"

namespace mdv::filter {

/// Outcome of processing a document re-registration (§3.5).
///
/// `candidates` (pass 1) ran with the *original* versions of updated and
/// deleted resources as input: every match is a resource that no longer
/// matches at least one rule. `new_matches` (the paper's third pass) ran
/// with the modified metadata as input and reports genuinely new
/// matches. `still_matching` (the paper's second pass) ran with the
/// candidate resources as input against the updated database and reports
/// every rule a candidate still matches — candidates absent from it may
/// be dropped from caches.
///
/// Implementation note: the paper orders the passes 1-2-3 and writes the
/// modified data between 1 and 2. We run pass 3 before pass 2 so that the
/// materialized results (purged of derivations involving the changed
/// resources, then rebuilt by pass 3) are complete when pass 2 probes
/// join rules. The reported sets are the same.
struct UpdateOutcome {
  rdf::DocumentDiff diff;
  std::vector<std::string> updated_uris;
  std::vector<std::string> deleted_uris;
  std::vector<std::string> inserted_uris;

  FilterRunResult candidates;      ///< Pass 1: matches of original versions.
  FilterRunResult new_matches;     ///< Pass 3: matches of modified data.
  FilterRunResult still_matching;  ///< Pass 2: rules candidates still match.
};

/// Registers the atoms of new documents and runs the filter once (the
/// plain registration path; sufficient when no updates/deletes occur).
Result<FilterRunResult> RegisterDocuments(
    rdbms::Database* db, FilterEngine* engine,
    const std::vector<const rdf::RdfDocument*>& documents);

/// Processes the re-registration of `updated` replacing `original`
/// (updating metadata means re-registering a modified version of an
/// already registered document, §2.2), running the three filter passes
/// of §3.5. Both documents must have the same URI.
Result<UpdateOutcome> ApplyDocumentUpdate(rdbms::Database* db,
                                          FilterEngine* engine,
                                          const rdf::RdfDocument& original,
                                          const rdf::RdfDocument& updated);

/// Processes the deletion of a whole document: equivalent to updating it
/// to an empty document (all resources deleted).
Result<UpdateOutcome> ApplyDocumentDeletion(rdbms::Database* db,
                                            FilterEngine* engine,
                                            const rdf::RdfDocument& original);

}  // namespace mdv::filter

#endif  // MDV_FILTER_UPDATE_PROTOCOL_H_
