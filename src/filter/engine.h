#ifndef MDV_FILTER_ENGINE_H_
#define MDV_FILTER_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "filter/rule_store.h"
#include "filter/work_stealing.h"
#include "obs/trace.h"
#include "rdbms/database.h"
#include "rdf/statement.h"

namespace mdv::filter {

/// Execution options for one filter run.
struct FilterOptions {
  /// When true (normal registration of new metadata), newly matched
  /// resources are appended to MaterializedResults and matches already
  /// materialized are suppressed from the output (they were published
  /// before). When false (the probe passes of the update/delete protocol,
  /// §3.5), the run re-derives matches for existing data and writes
  /// nothing.
  bool update_materialized = true;

  /// When true (default), the initial iteration matches delta atoms via
  /// RuleStore's in-memory predicate index (binary search / hash probe
  /// per atom). When false it scans the FilterRules* tables row by row,
  /// reconverting constants per row — the seed access path, kept for
  /// differential testing and for the fig12-15 ablation.
  bool use_predicate_index = true;

  /// When true, the engine audits the runtime invariants after the run:
  /// Database::CheckInvariants (index↔heap consistency of every filter
  /// table) and RuleStore::CheckConsistency (predicate index vs the
  /// FilterRules* tables). A violation turns a successful run into an
  /// Internal error. Also forced on for every run when the
  /// MDV_AUDIT_INVARIANTS environment variable is set (the test suites
  /// run with it enabled).
  bool audit_invariants = false;
};

/// True when MDV_AUDIT_INVARIANTS is set in the environment (read once).
bool AuditInvariantsEnabled();

/// Construction-time options of the engine.
struct EngineOptions {
  /// Size of the work-stealing pool that fans a run out across rule-base
  /// shards. Effective only when the RuleStore is sharded
  /// (num_shards > 1); 1 keeps every run on the calling thread. The
  /// engine also falls back to sequential shard execution inside a
  /// database transaction (the undo log is not thread-safe).
  int num_workers = 1;
};

/// Execution counters of one filter run, exposed for benchmarks and for
/// observability of the algorithm's behaviour.
///
/// Each field documents the exact site that increments it. The struct is
/// the *per-run* view; FilterEngine::Run mirrors every field into
/// accumulating `mdv.filter.*_total` counters of obs::DefaultMetrics()
/// at the end of the run (asserted consistent by filter_stats_test.cc),
/// so MetricsSnapshot() reports the same quantities across all runs of
/// the process.
struct FilterRunStats {
  /// Input atoms of the run. Set once at the top of FilterEngine::Run
  /// from `delta.size()`.
  int64_t delta_atoms = 0;
  /// (rule, uri) pairs left after the initial iteration, post-dedup and
  /// post-suppression of already-materialized matches. Summed in Run
  /// over `current` right before the join loop starts.
  int64_t triggering_matches = 0;
  /// Rule-group evaluations: +1 per agenda entry per join iteration
  /// (top of the group loop in Run). With rule groups disabled every
  /// member is its own group, so this equals members_evaluated.
  int64_t groups_evaluated = 0;
  /// Join-rule members on the agenda (members whose input rules received
  /// new matches): += members.size() per evaluated group in Run.
  int64_t members_evaluated = 0;
  /// Genuinely new (join rule, uri) pairs: += fresh.size() in Run's
  /// per-member dedup step at the bottom of the group loop.
  int64_t join_matches = 0;
  /// Predicate-index probes of the initial iteration: +1 per distinct
  /// (class, property, value) among the delta atoms, in
  /// MatchTriggeringRulesIndexed. 0 when the index is off.
  int64_t index_probes = 0;
  /// (rule, uri) emissions from the predicate index: +1 in the `add`
  /// lambda of MatchTriggeringRulesIndexed (pre-dedup, so it may exceed
  /// triggering_matches).
  int64_t index_hits = 0;
  /// Delta atoms matched via the legacy FilterRules table scan: +1 per
  /// atom in MatchTriggeringRulesScan (0 when the index is on).
  int64_t scan_fallbacks = 0;
};

/// Result of one filter run: for every affected atomic rule, the URI
/// references of the resources it newly matched, plus run statistics.
struct FilterRunResult {
  std::map<int64_t, std::vector<std::string>> matches;
  int iterations = 0;  ///< Join-rule iterations after the initial step.
  FilterRunStats stats;

  const std::vector<std::string>* MatchesFor(int64_t rule_id) const {
    auto it = matches.find(rule_id);
    return it == matches.end() ? nullptr : &it->second;
  }
};

/// The filter algorithm (§3.4): matches document atoms against the
/// decomposed rule base held in the filter tables.
///
/// A run proceeds in two phases. The *initial iteration* joins the delta
/// atoms with the FilterRules* tables to determine all affected
/// triggering rules. Subsequent iterations evaluate the join rules that
/// depend on the rules matched so far (via RuleDependencies), rule group
/// by rule group, incrementally: only resources newly matched this run
/// drive the evaluation, with the other join side completed from
/// MaterializedResults. The run terminates when an iteration produces no
/// new matches; termination is guaranteed because the dependency graph
/// is acyclic.
/// When the rule store is sharded, a run fans out: each regular shard
/// executes the two-phase algorithm independently over its own table set
/// and predicate index (in parallel on the work-stealing pool when
/// `EngineOptions::num_workers` > 1), then the overflow shard — whose
/// rules may depend on rules of any regular shard — runs last, seeded
/// with the regular shards' fresh matches. Per-shard results merge
/// deterministically: matches in stable rule-id order, stats summed
/// (iterations = max), and the legacy ResultObjects table rewritten with
/// the run's full match set sorted by (rule_id, uri).
///
/// The engine itself is externally synchronized (one Run at a time, no
/// concurrent RuleStore mutation); parallelism lives strictly inside a
/// run.
class FilterEngine {
 public:
  FilterEngine(rdbms::Database* db, RuleStore* rule_store,
               EngineOptions options = EngineOptions{})
      : db_(db), store_(rule_store), options_(options) {
    if (options_.num_workers > 1 && store_->total_shards() > 1) {
      pool_ = std::make_unique<WorkStealingPool>(options_.num_workers);
    }
  }

  FilterEngine(const FilterEngine&) = delete;
  FilterEngine& operator=(const FilterEngine&) = delete;

  const RuleStore& rule_store() const { return *store_; }
  const EngineOptions& engine_options() const { return options_; }

  /// Runs the filter with `delta` (the atoms of newly registered or
  /// re-registered documents) as input. The delta atoms must already be
  /// present in FilterData if `options.update_materialized` is true
  /// (join evaluation resolves property values through FilterData).
  Result<FilterRunResult> Run(const rdf::Statements& delta,
                              const FilterOptions& options = FilterOptions{});

  /// Seeds newly created atomic rules (from RuleStore::RegisterTree)
  /// against the *entire* existing FilterData content, materializing
  /// their results. Use when a subscription arrives after data: existing
  /// rules keep their state, only `new_rules` (children before parents)
  /// are evaluated from scratch. Returns matches for the new rules.
  Result<FilterRunResult> EvaluateNewRules(
      const std::vector<int64_t>& new_rules);

 private:
  using MatchSet = std::unordered_set<std::string>;

  /// Fresh matches of the regular shards fed into the overflow pass:
  /// rule → uris, restricted to rules with a dependent in overflow.
  using ForeignSeeds = std::map<int64_t, std::vector<std::string>>;

  /// Delta atoms grouped by (class, property), then by value text, with
  /// subject pointers into the delta (which must outlive the grouping).
  /// The grouping is shard-independent, so Run builds it once and every
  /// shard pass probes from the same structure instead of re-grouping
  /// the delta per shard.
  using GroupedDelta =
      std::map<std::pair<std::string, std::string>,
               std::map<std::string, std::vector<const std::string*>>>;
  static GroupedDelta GroupDelta(const rdf::Statements& delta);

  /// One shard's two-phase filter pass (the whole algorithm when the
  /// store is unsharded). Appends matches/iterations/stats into `out`
  /// (delta_atoms is owned by Run). `foreign_seeds`, non-null only for
  /// the overflow shard, seeds the join agenda with the regular shards'
  /// fresh matches; seeded rules drive joins but are excluded from the
  /// output, the stats and re-materialization. `parent` is the
  /// enclosing filter.run span's context, passed explicitly because a
  /// pass may execute on a pool worker whose thread-local span stack is
  /// empty — without it the shard spans would detach from the trace.
  Status RunShard(int shard, const rdf::Statements& delta,
                  const GroupedDelta& grouped, const FilterOptions& options,
                  const ForeignSeeds* foreign_seeds, obs::SpanContext parent,
                  FilterRunResult* out);

  /// Initial iteration: delta atoms × `shard`'s triggering-rule base.
  /// Dispatches to the predicate-index or the table-scan path per
  /// `options`; `stats` receives the index_probes/index_hits/
  /// scan_fallbacks counters.
  Status MatchTriggeringRules(int shard, const rdf::Statements& delta,
                              const GroupedDelta& grouped,
                              const FilterOptions& options,
                              FilterRunStats* stats,
                              std::map<int64_t, MatchSet>* current) const;

  /// Index path: one predicate-index probe per distinct
  /// (class, property, value) group of the delta.
  Status MatchTriggeringRulesIndexed(int shard, const GroupedDelta& grouped,
                                     FilterRunStats* stats,
                                     std::map<int64_t, MatchSet>* current)
      const;

  /// Scan path (the seed access path): per atom, probe the FilterRules*
  /// tables and reconvert stored constants row by row (§3.3.4).
  Status MatchTriggeringRulesScan(int shard, const rdf::Statements& delta,
                                  FilterRunStats* stats,
                                  std::map<int64_t, MatchSet>* current) const;

  /// All materialized uris of `rule_id`, read from its owning shard.
  std::vector<std::string> MaterializedOf(int64_t rule_id) const;

  /// Values of one join side for resource `uri`: the uri itself when
  /// `property` is empty, else the FilterData values of that property.
  std::vector<std::string> SideValues(const std::string& uri,
                                      const std::string& property) const;

  /// Resources of `partner_class` whose `property` has value `value`
  /// (reverse FilterData lookup); `property` empty means `value` itself
  /// is the partner uri.
  std::vector<std::string> PartnersByValue(const std::string& value,
                                           const std::string& property,
                                           const std::string& partner_class)
      const;

  /// Appends to the MaterializedResults table of `rule_id`'s shard.
  Status AppendMaterialized(int64_t rule_id,
                            const std::vector<std::string>& uris);

  /// Mirrors the current iteration's matches into `shard`'s ResultObjects
  /// table (Figure 9).
  Status WriteResultObjects(int shard,
                            const std::map<int64_t, MatchSet>& current);

  /// Multi-shard runs only: rewrites the legacy ResultObjects table with
  /// the merged run's full match set in (rule_id, uri) order — the
  /// deterministic merged artifact the differential tests compare.
  Status WriteMergedResultObjects(const FilterRunResult& result);

  rdbms::Database* db_;
  RuleStore* store_;
  EngineOptions options_;
  std::unique_ptr<WorkStealingPool> pool_;  // Set iff workers>1 && sharded.
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_ENGINE_H_
