#ifndef MDV_FILTER_ENGINE_H_
#define MDV_FILTER_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "filter/rule_store.h"
#include "rdbms/database.h"
#include "rdf/statement.h"

namespace mdv::filter {

/// Execution options for one filter run.
struct FilterOptions {
  /// When true (normal registration of new metadata), newly matched
  /// resources are appended to MaterializedResults and matches already
  /// materialized are suppressed from the output (they were published
  /// before). When false (the probe passes of the update/delete protocol,
  /// §3.5), the run re-derives matches for existing data and writes
  /// nothing.
  bool update_materialized = true;

  /// When true (default), the initial iteration matches delta atoms via
  /// RuleStore's in-memory predicate index (binary search / hash probe
  /// per atom). When false it scans the FilterRules* tables row by row,
  /// reconverting constants per row — the seed access path, kept for
  /// differential testing and for the fig12-15 ablation.
  bool use_predicate_index = true;

  /// When true, the engine audits the runtime invariants after the run:
  /// Database::CheckInvariants (index↔heap consistency of every filter
  /// table) and RuleStore::CheckConsistency (predicate index vs the
  /// FilterRules* tables). A violation turns a successful run into an
  /// Internal error. Also forced on for every run when the
  /// MDV_AUDIT_INVARIANTS environment variable is set (the test suites
  /// run with it enabled).
  bool audit_invariants = false;
};

/// True when MDV_AUDIT_INVARIANTS is set in the environment (read once).
bool AuditInvariantsEnabled();

/// Execution counters of one filter run, exposed for benchmarks and for
/// observability of the algorithm's behaviour.
///
/// Each field documents the exact site that increments it. The struct is
/// the *per-run* view; FilterEngine::Run mirrors every field into
/// accumulating `mdv.filter.*_total` counters of obs::DefaultMetrics()
/// at the end of the run (asserted consistent by filter_stats_test.cc),
/// so MetricsSnapshot() reports the same quantities across all runs of
/// the process.
struct FilterRunStats {
  /// Input atoms of the run. Set once at the top of FilterEngine::Run
  /// from `delta.size()`.
  int64_t delta_atoms = 0;
  /// (rule, uri) pairs left after the initial iteration, post-dedup and
  /// post-suppression of already-materialized matches. Summed in Run
  /// over `current` right before the join loop starts.
  int64_t triggering_matches = 0;
  /// Rule-group evaluations: +1 per agenda entry per join iteration
  /// (top of the group loop in Run). With rule groups disabled every
  /// member is its own group, so this equals members_evaluated.
  int64_t groups_evaluated = 0;
  /// Join-rule members on the agenda (members whose input rules received
  /// new matches): += members.size() per evaluated group in Run.
  int64_t members_evaluated = 0;
  /// Genuinely new (join rule, uri) pairs: += fresh.size() in Run's
  /// per-member dedup step at the bottom of the group loop.
  int64_t join_matches = 0;
  /// Predicate-index probes of the initial iteration: +1 per distinct
  /// (class, property, value) among the delta atoms, in
  /// MatchTriggeringRulesIndexed. 0 when the index is off.
  int64_t index_probes = 0;
  /// (rule, uri) emissions from the predicate index: +1 in the `add`
  /// lambda of MatchTriggeringRulesIndexed (pre-dedup, so it may exceed
  /// triggering_matches).
  int64_t index_hits = 0;
  /// Delta atoms matched via the legacy FilterRules table scan: +1 per
  /// atom in MatchTriggeringRulesScan (0 when the index is on).
  int64_t scan_fallbacks = 0;
};

/// Result of one filter run: for every affected atomic rule, the URI
/// references of the resources it newly matched, plus run statistics.
struct FilterRunResult {
  std::map<int64_t, std::vector<std::string>> matches;
  int iterations = 0;  ///< Join-rule iterations after the initial step.
  FilterRunStats stats;

  const std::vector<std::string>* MatchesFor(int64_t rule_id) const {
    auto it = matches.find(rule_id);
    return it == matches.end() ? nullptr : &it->second;
  }
};

/// The filter algorithm (§3.4): matches document atoms against the
/// decomposed rule base held in the filter tables.
///
/// A run proceeds in two phases. The *initial iteration* joins the delta
/// atoms with the FilterRules* tables to determine all affected
/// triggering rules. Subsequent iterations evaluate the join rules that
/// depend on the rules matched so far (via RuleDependencies), rule group
/// by rule group, incrementally: only resources newly matched this run
/// drive the evaluation, with the other join side completed from
/// MaterializedResults. The run terminates when an iteration produces no
/// new matches; termination is guaranteed because the dependency graph
/// is acyclic.
class FilterEngine {
 public:
  FilterEngine(rdbms::Database* db, RuleStore* rule_store)
      : db_(db), store_(rule_store) {}

  FilterEngine(const FilterEngine&) = delete;
  FilterEngine& operator=(const FilterEngine&) = delete;

  /// Runs the filter with `delta` (the atoms of newly registered or
  /// re-registered documents) as input. The delta atoms must already be
  /// present in FilterData if `options.update_materialized` is true
  /// (join evaluation resolves property values through FilterData).
  Result<FilterRunResult> Run(const rdf::Statements& delta,
                              const FilterOptions& options = FilterOptions{});

  /// Seeds newly created atomic rules (from RuleStore::RegisterTree)
  /// against the *entire* existing FilterData content, materializing
  /// their results. Use when a subscription arrives after data: existing
  /// rules keep their state, only `new_rules` (children before parents)
  /// are evaluated from scratch. Returns matches for the new rules.
  Result<FilterRunResult> EvaluateNewRules(
      const std::vector<int64_t>& new_rules);

 private:
  using MatchSet = std::unordered_set<std::string>;

  /// Initial iteration: delta atoms × triggering-rule base. Dispatches
  /// to the predicate-index or the table-scan path per `options`;
  /// `stats` receives the index_probes/index_hits/scan_fallbacks
  /// counters.
  Status MatchTriggeringRules(const rdf::Statements& delta,
                              const FilterOptions& options,
                              FilterRunStats* stats,
                              std::map<int64_t, MatchSet>* current) const;

  /// Index path: delta atoms grouped by (class, property, value), one
  /// predicate-index probe per distinct group.
  Status MatchTriggeringRulesIndexed(const rdf::Statements& delta,
                                     FilterRunStats* stats,
                                     std::map<int64_t, MatchSet>* current)
      const;

  /// Scan path (the seed access path): per atom, probe the FilterRules*
  /// tables and reconvert stored constants row by row (§3.3.4).
  Status MatchTriggeringRulesScan(const rdf::Statements& delta,
                                  FilterRunStats* stats,
                                  std::map<int64_t, MatchSet>* current) const;

  /// All materialized uris of `rule_id`.
  std::vector<std::string> MaterializedOf(int64_t rule_id) const;

  /// Values of one join side for resource `uri`: the uri itself when
  /// `property` is empty, else the FilterData values of that property.
  std::vector<std::string> SideValues(const std::string& uri,
                                      const std::string& property) const;

  /// Resources of `partner_class` whose `property` has value `value`
  /// (reverse FilterData lookup); `property` empty means `value` itself
  /// is the partner uri.
  std::vector<std::string> PartnersByValue(const std::string& value,
                                           const std::string& property,
                                           const std::string& partner_class)
      const;

  Status AppendMaterialized(int64_t rule_id,
                            const std::vector<std::string>& uris);

  /// Mirrors the current iteration's matches into the ResultObjects
  /// table (Figure 9).
  Status WriteResultObjects(const std::map<int64_t, MatchSet>& current);

  rdbms::Database* db_;
  RuleStore* store_;
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_ENGINE_H_
