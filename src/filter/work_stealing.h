#ifndef MDV_FILTER_WORK_STEALING_H_
#define MDV_FILTER_WORK_STEALING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mdv::filter {

/// Lifetime execution counters of one pool (all Run() batches).
/// `busy_ns / (wall_ns * num_workers)` is the pool utilization: how
/// much of the workers' capacity the batches actually used — a low
/// value under load means shard skew, a high steal share means the
/// round-robin placement was wrong but stealing rebalanced it.
struct PoolStats {
  int64_t batches = 0;
  int64_t tasks = 0;     ///< Executed tasks (serial fallback included).
  int64_t steals = 0;    ///< Tasks taken from another worker's queue.
  int64_t busy_ns = 0;   ///< Summed task execution time.
  int64_t wall_ns = 0;   ///< Summed Run() wall time.
};

/// A fixed pool of worker threads with per-worker task deques and work
/// stealing: each worker pops from the back of its own deque and, when
/// empty, steals from the front of a victim's. The filter engine uses it
/// to fan a publish batch out across rule-base shards — shard runtimes
/// are skewed (the delta rarely touches all shards equally), so idle
/// workers steal the tail instead of waiting at a static partition.
///
/// The pool executes one batch at a time: Run() distributes the tasks
/// round-robin, wakes the workers, and blocks until every task has
/// finished. Tasks must not call Run() recursively. Exceptions must not
/// escape tasks (the filter reports failures through Status values).
class WorkStealingPool {
 public:
  /// Spawns `num_workers` (at least 1) threads; they idle until Run().
  explicit WorkStealingPool(int num_workers);

  /// Joins the workers. Must not be called while Run() is in flight.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Executes all `tasks` on the pool and returns when the last one has
  /// completed. Serial fallback (caller thread) when the pool has one
  /// worker or there is at most one task.
  void Run(std::vector<std::function<void()>> tasks) EXCLUDES(mu_);

  /// Point-in-time copy of the lifetime counters. Also mirrored into
  /// `mdv.filter.pool.*` metrics of obs::DefaultMetrics() after every
  /// batch (utilization as a percent gauge).
  PoolStats stats() const;

 private:
  struct Queue {
    /// Same rank for every worker's deque: takers hold at most one at
    /// a time (own pop, then each steal victim in turn), never two.
    Mutex mu{LockRank::kFilterQueue, "filter.pool.queue"};
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self) EXCLUDES(mu_);
  /// Pops from own back, else steals from another queue's front
  /// (`*stolen` reports which).
  bool TryTakeTask(size_t self, std::function<void()>* task, bool* stolen)
      EXCLUDES(mu_);
  /// Runs `task`, accounting its execution time and steal origin.
  void ExecuteTask(std::function<void()>& task, bool stolen);

  std::vector<std::unique_ptr<Queue>> queues_;  // One per worker.
  std::vector<std::thread> workers_;

  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> busy_ns_{0};
  std::atomic<int64_t> wall_ns_{0};

  /// Batch bookkeeping; never held together with a Queue::mu (the
  /// counters are updated before pushing and after popping tasks).
  Mutex mu_{LockRank::kFilterPool, "filter.pool"};
  CondVar wake_;  // Workers wait for queued work.
  CondVar done_;  // Run() waits for pending_ == 0.
  size_t queued_ GUARDED_BY(mu_) = 0;   // Tasks pushed but not yet taken.
  size_t pending_ GUARDED_BY(mu_) = 0;  // Not yet finished in this batch.
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_WORK_STEALING_H_
