#ifndef MDV_FILTER_WORK_STEALING_H_
#define MDV_FILTER_WORK_STEALING_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdv::filter {

/// A fixed pool of worker threads with per-worker task deques and work
/// stealing: each worker pops from the back of its own deque and, when
/// empty, steals from the front of a victim's. The filter engine uses it
/// to fan a publish batch out across rule-base shards — shard runtimes
/// are skewed (the delta rarely touches all shards equally), so idle
/// workers steal the tail instead of waiting at a static partition.
///
/// The pool executes one batch at a time: Run() distributes the tasks
/// round-robin, wakes the workers, and blocks until every task has
/// finished. Tasks must not call Run() recursively. Exceptions must not
/// escape tasks (the filter reports failures through Status values).
class WorkStealingPool {
 public:
  /// Spawns `num_workers` (at least 1) threads; they idle until Run().
  explicit WorkStealingPool(int num_workers);

  /// Joins the workers. Must not be called while Run() is in flight.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Executes all `tasks` on the pool and returns when the last one has
  /// completed. Serial fallback (caller thread) when the pool has one
  /// worker or there is at most one task.
  void Run(std::vector<std::function<void()>> tasks);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops from own back, else steals from another queue's front.
  bool TryTakeTask(size_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;  // One per worker.
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // Guards the batch state below.
  std::condition_variable wake_;   // Workers wait for queued work.
  std::condition_variable done_;   // Run() waits for pending_ == 0.
  size_t queued_ = 0;              // Tasks pushed but not yet taken.
  size_t pending_ = 0;             // Tasks not yet finished in this batch.
  bool shutdown_ = false;
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_WORK_STEALING_H_
