#include "filter/rule_store.h"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "common/checksum.h"
#include "common/logging.h"
#include "filter/tables.h"
#include "obs/metrics.h"
#include "rdbms/table.h"

namespace mdv::filter {

namespace {

using rdbms::CompareOp;
using rdbms::Row;
using rdbms::ScanCondition;
using rdbms::Table;
using rdbms::Value;

Value Int(int64_t v) { return Value(v); }
Value Str(std::string s) { return Value(std::move(s)); }

/// Registry handles of the rule-base linter, resolved once.
struct LintMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& checked = r.GetCounter("mdv.lint.checked_total");
  obs::Counter& rejected = r.GetCounter("mdv.lint.rejected_total");
  obs::Counter& duplicate = r.GetCounter("mdv.lint.duplicate_total");
  obs::Counter& subsumed = r.GetCounter("mdv.lint.subsumed_total");
  obs::Counter& warnings = r.GetCounter("mdv.lint.warnings_total");

  static LintMetrics& Get() {
    static LintMetrics& metrics = *new LintMetrics();
    return metrics;
  }
};

Result<CompareOp> ParseOp(const std::string& text) {
  if (text == "=") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  if (text == "contains") return CompareOp::kContains;
  return Status::Internal("unknown operator '" + text + "' in RuleGroups");
}

}  // namespace

RuleStore::RuleStore(rdbms::Database* db, RuleStoreOptions options)
    : db_(db), options_(options) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  const int total = TotalShardCount(options_.num_shards);
  indexes_.reserve(static_cast<size_t>(total));
  for (int shard = 0; shard < total; ++shard) {
    indexes_.push_back(std::make_unique<PredicateIndex>());
  }
  shard_rule_count_.assign(static_cast<size_t>(total), 0);

  // Resume id counters and the routing map from existing content (e.g. a
  // reopened database). Rows written before sharding existed have no
  // shard column and default to shard 0.
  const Table* atomic = db_->GetTable(kAtomicRules);
  assert(atomic != nullptr && "filter tables missing; call CreateFilterTables");
  atomic->Scan([&](rdbms::RowId, const Row& row) {
    int64_t rule_id = row[AtomicRulesCols::kRuleId].as_int();
    next_rule_id_ = std::max(next_rule_id_, rule_id + 1);
    int shard = row.size() > AtomicRulesCols::kShard
                    ? static_cast<int>(row[AtomicRulesCols::kShard].as_int())
                    : 0;
    RecordShard(rule_id, shard);
    type_of_[rule_id] = row[AtomicRulesCols::kType].as_string();
  });
  const Table* groups = db_->GetTable(kRuleGroups);
  groups->Scan([&](rdbms::RowId, const Row& row) {
    int64_t group_id = row[RuleGroupsCols::kGroupId].as_int();
    next_group_id_ = std::max(next_group_id_, group_id + 1);
    Result<CompareOp> op = ParseOp(row[RuleGroupsCols::kOp].as_string());
    if (!op.ok()) return;  // GroupSpecOf reports the group as missing.
    GroupSpec spec;
    spec.group_id = group_id;
    spec.left_class = row[RuleGroupsCols::kLeftClass].as_string();
    spec.right_class = row[RuleGroupsCols::kRightClass].as_string();
    spec.lhs_property = row[RuleGroupsCols::kLhsProperty].as_string();
    spec.op = *op;
    spec.rhs_property = row[RuleGroupsCols::kRhsProperty].as_string();
    spec.register_side =
        static_cast<int>(row[RuleGroupsCols::kRegisterSide].as_int());
    group_spec_of_.emplace(group_id, std::move(spec));
  });
  const Table* deps = db_->GetTable(kRuleDependencies);
  deps->Scan([&](rdbms::RowId, const Row& row) {
    RecordEdge(row[RuleDependenciesCols::kSource].as_int(),
               row[RuleDependenciesCols::kTarget].as_int(),
               static_cast<int>(row[RuleDependenciesCols::kSide].as_int()),
               row[RuleDependenciesCols::kGroupId].as_int());
  });

  // Rebuild the per-shard predicate indexes from the FilterRules* tables
  // (a fresh database contributes nothing; a reopened one is re-indexed
  // here).
  for (int shard = 0; shard < total; ++shard) {
    PredicateIndex& index = *indexes_[static_cast<size_t>(shard)];
    const Table* cls = db_->GetTable(ShardTableName(kFilterRulesCLS, shard));
    cls->Scan([&](rdbms::RowId, const Row& row) {
      index.AddClassRule(row[FilterRulesCols::kRuleId].as_int(),
                         row[FilterRulesCols::kClass].as_string());
    });
    for (const OperatorTableInfo& info : OperatorTableInfos()) {
      db_->GetTable(ShardTableName(info.table, shard))
          ->Scan([&](rdbms::RowId, const Row& row) {
            index.AddPredicateRule(
                row[FilterRulesCols::kRuleId].as_int(),
                row[FilterRulesCols::kClass].as_string(),
                row[FilterRulesCols::kProperty].as_string(), info.op,
                row[FilterRulesCols::kValue].as_string(),
                /*constant_is_number=*/std::string(info.table) ==
                    kFilterRulesEQN);
          });
    }
  }
}

int RuleStore::ShardOf(int64_t rule_id) const {
  auto it = shard_of_.find(rule_id);
  return it == shard_of_.end() ? 0 : it->second;
}

int64_t RuleStore::ShardRuleCount(int shard) const {
  return shard_rule_count_[static_cast<size_t>(shard)];
}

void RuleStore::RecordShard(int64_t rule_id, int shard) {
  if (shard < 0 || shard >= total_shards()) shard = 0;
  shard_of_[rule_id] = shard;
  ++shard_rule_count_[static_cast<size_t>(shard)];
}

void RuleStore::RecordEdge(int64_t source, int64_t target, int side,
                           int64_t group_id) {
  dependents_of_[source].push_back(Dependent{target, side, group_id});
  JoinInputs& inputs = inputs_of_[target];
  (side == 0 ? inputs.left : inputs.right) = source;
}

void RuleStore::ForgetEdgesInto(int64_t target) {
  auto in = inputs_of_.find(target);
  if (in != inputs_of_.end()) {
    for (int64_t source : {in->second.left, in->second.right}) {
      auto it = dependents_of_.find(source);
      if (it == dependents_of_.end()) continue;
      std::vector<Dependent>& edges = it->second;
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [target](const Dependent& edge) {
                                   return edge.target == target;
                                 }),
                  edges.end());
      if (edges.empty()) dependents_of_.erase(it);
    }
    inputs_of_.erase(in);
  }
  dependents_of_.erase(target);
}

int RuleStore::ShardOfTree(const rules::DecomposedRule& tree) const {
  if (options_.num_shards <= 1) return 0;

  // External subtrees are already placed; new nodes must colocate with
  // them so no dependency edge crosses two regular shards. Externals in
  // two different shards force the tree to the overflow shard — these
  // are the "rules whose atoms span shards".
  std::vector<int> external_shards;
  std::vector<std::string> texts;
  for (const rules::AtomicRuleNode& node : tree.atoms) {
    if (node.is_external) {
      int shard = ShardOf(node.external_rule_id);
      if (std::find(external_shards.begin(), external_shards.end(), shard) ==
          external_shards.end()) {
        external_shards.push_back(shard);
      }
    } else if (node.kind == rules::AtomicRuleKind::kTriggering) {
      texts.push_back(TriggeringRuleText(node.trigger));
    }
  }
  if (external_shards.size() > 1) return overflow_shard();
  if (external_shards.size() == 1) return external_shards[0];

  // (class, property) affinity refined by the predicate constants: the
  // canonical triggering texts start with "T|<class>|<property>", so
  // rules over the same keys cluster, while hashing the full text (with
  // its constant) still spreads a rule base that concentrates on a
  // single property across all shards. Sorting makes the fingerprint
  // independent of decomposition order.
  std::sort(texts.begin(), texts.end());
  uint64_t hash = kFnv1aOffsetBasis;
  for (const std::string& text : texts) {
    hash = Fnv1aExtend(hash, text);
    hash = Fnv1aExtend(hash, std::string_view("\xff", 1));  // Atom separator.
  }
  return static_cast<int>(hash % static_cast<uint64_t>(options_.num_shards));
}

std::optional<int64_t> RuleStore::LookupByText(const std::string& text,
                                               int shard) const {
  const Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<Row> rows = atomic->SelectRows(
      {ScanCondition{AtomicRulesCols::kText, CompareOp::kEq, Str(text)}});
  // The same canonical text may exist in several shards (affinity
  // routing copies a shared atom per shard); dedup is per shard.
  for (const Row& row : rows) {
    int row_shard = row.size() > AtomicRulesCols::kShard
                        ? static_cast<int>(row[AtomicRulesCols::kShard].as_int())
                        : 0;
    if (row_shard == shard) {
      return row[AtomicRulesCols::kRuleId].as_int();
    }
  }
  return std::nullopt;
}

Status RuleStore::InsertTriggeringRow(int64_t rule_id, int shard,
                                      const rules::TriggeringSpec& spec) {
  PredicateIndex& index = *indexes_[static_cast<size_t>(shard)];
  if (!spec.predicate) {
    Table* cls = db_->GetTable(ShardTableName(kFilterRulesCLS, shard));
    MDV_ASSIGN_OR_RETURN(rdbms::RowId ignored,
                         cls->Insert({Int(rule_id), Str(spec.class_name)}));
    (void)ignored;
    index.AddClassRule(rule_id, spec.class_name);
    return Status::OK();
  }
  const rules::TriggeringPredicate& pred = *spec.predicate;
  std::string table_name =
      FilterRulesTableFor(pred.op, pred.constant_is_number);
  Table* table = db_->GetTable(ShardTableName(table_name, shard));
  MDV_ASSIGN_OR_RETURN(
      rdbms::RowId ignored,
      table->Insert({Int(rule_id), Str(spec.class_name), Str(pred.property),
                     Str(pred.constant)}));
  (void)ignored;
  index.AddPredicateRule(rule_id, spec.class_name, pred.property, pred.op,
                         pred.constant, pred.constant_is_number);
  return Status::OK();
}

Result<int64_t> RuleStore::GetOrCreateGroup(const rules::JoinSpec& spec,
                                            int64_t owner_rule_id) {
  Table* groups = db_->GetTable(kRuleGroups);
  std::string key = options_.use_rule_groups
                        ? spec.GroupKey()
                        : "solo|" + std::to_string(owner_rule_id);
  std::vector<rdbms::RowId> existing = groups->SelectRowIds(
      {ScanCondition{RuleGroupsCols::kKey, CompareOp::kEq, Str(key)}});
  if (!existing.empty()) {
    Row row = *groups->Get(existing[0]);
    row[RuleGroupsCols::kMemberCount] =
        Int(row[RuleGroupsCols::kMemberCount].as_int() + 1);
    int64_t group_id = row[RuleGroupsCols::kGroupId].as_int();
    MDV_RETURN_IF_ERROR(groups->Update(existing[0], std::move(row)));
    return group_id;
  }
  int64_t group_id = next_group_id_++;
  MDV_ASSIGN_OR_RETURN(
      rdbms::RowId ignored,
      groups->Insert({Int(group_id), Str(key), Str(spec.left_class),
                      Str(spec.right_class), Str(spec.lhs.property),
                      Str(rdbms::CompareOpToString(spec.op)),
                      Str(spec.rhs.property), Int(spec.register_side),
                      Int(1)}));
  (void)ignored;
  GroupSpec cached;
  cached.group_id = group_id;
  cached.left_class = spec.left_class;
  cached.right_class = spec.right_class;
  cached.lhs_property = spec.lhs.property;
  cached.op = spec.op;
  cached.rhs_property = spec.rhs.property;
  cached.register_side = spec.register_side;
  group_spec_of_.emplace(group_id, std::move(cached));
  return group_id;
}

Result<int64_t> RuleStore::MergeNode(const rules::DecomposedRule& tree,
                                     int node_index, int shard,
                                     std::vector<int64_t>* id_of_node,
                                     std::vector<int64_t>* created) {
  if ((*id_of_node)[node_index] >= 0) return (*id_of_node)[node_index];
  const rules::AtomicRuleNode& node = tree.atoms[node_index];

  if (node.is_external) {
    (*id_of_node)[node_index] = node.external_rule_id;
    return node.external_rule_id;
  }

  Table* atomic = db_->GetTable(kAtomicRules);

  if (node.kind == rules::AtomicRuleKind::kTriggering) {
    std::string text = TriggeringRuleText(node.trigger);
    if (options_.merge_shared_atoms) {
      if (std::optional<int64_t> existing = LookupByText(text, shard)) {
        (*id_of_node)[node_index] = *existing;
        return *existing;
      }
    }
    int64_t id = next_rule_id_++;
    if (!options_.merge_shared_atoms) {
      text += "|#" + std::to_string(id);  // Force private copies.
    }
    MDV_ASSIGN_OR_RETURN(
        rdbms::RowId ignored,
        atomic->Insert({Int(id), Str("T"), Str(node.type), Str(text), Int(-1),
                        Int(0), Int(shard)}));
    (void)ignored;
    RecordShard(id, shard);
    type_of_[id] = node.type;
    MDV_RETURN_IF_ERROR(InsertTriggeringRow(id, shard, node.trigger));
    if (created != nullptr) created->push_back(id);
    (*id_of_node)[node_index] = id;
    return id;
  }

  // Join rule: merge children first; their global ids are part of the
  // canonical text, so equal subtrees dedup bottom-up.
  MDV_ASSIGN_OR_RETURN(
      int64_t left,
      MergeNode(tree, node.left_child, shard, id_of_node, created));
  MDV_ASSIGN_OR_RETURN(
      int64_t right,
      MergeNode(tree, node.right_child, shard, id_of_node, created));
  std::string text = JoinRuleText(node.join, left, right);
  if (options_.merge_shared_atoms) {
    if (std::optional<int64_t> existing = LookupByText(text, shard)) {
      (*id_of_node)[node_index] = *existing;
      return *existing;
    }
  }
  int64_t id = next_rule_id_++;
  if (!options_.merge_shared_atoms) {
    text += "|#" + std::to_string(id);
  }
  MDV_ASSIGN_OR_RETURN(int64_t group_id, GetOrCreateGroup(node.join, id));
  MDV_ASSIGN_OR_RETURN(
      rdbms::RowId ignored,
      atomic->Insert({Int(id), Str("J"), Str(node.type), Str(text),
                      Int(group_id), Int(0), Int(shard)}));
  (void)ignored;
  RecordShard(id, shard);
  type_of_[id] = node.type;

  // Dependency edges; each edge takes a reference on its source.
  Table* deps = db_->GetTable(kRuleDependencies);
  MDV_ASSIGN_OR_RETURN(rdbms::RowId e1,
                       deps->Insert({Int(left), Int(id), Int(0),
                                     Int(group_id)}));
  (void)e1;
  RecordEdge(left, id, 0, group_id);
  MDV_RETURN_IF_ERROR(AdjustRefcount(left, +1));
  MDV_ASSIGN_OR_RETURN(rdbms::RowId e2,
                       deps->Insert({Int(right), Int(id), Int(1),
                                     Int(group_id)}));
  (void)e2;
  RecordEdge(right, id, 1, group_id);
  MDV_RETURN_IF_ERROR(AdjustRefcount(right, +1));

  if (created != nullptr) created->push_back(id);
  (*id_of_node)[node_index] = id;
  return id;
}

Result<int64_t> RuleStore::RegisterTree(const rules::DecomposedRule& tree,
                                        std::vector<int64_t>* created) {
  if (created != nullptr) created->clear();
  if (tree.root < 0 || tree.atoms.empty()) {
    return Status::InvalidArgument("empty decomposed rule");
  }
  std::vector<int64_t> id_of_node(tree.atoms.size(), -1);
  const int shard = ShardOfTree(tree);
  MDV_ASSIGN_OR_RETURN(int64_t end_rule,
                       MergeNode(tree, tree.root, shard, &id_of_node, created));
  MDV_RETURN_IF_ERROR(AdjustRefcount(end_rule, +1));  // Subscription ref.
  return end_rule;
}

Result<RuleStore::AddRuleOutcome> RuleStore::AddRule(
    const rules::CompiledRule& compiled, const rdf::RdfSchema& schema,
    const std::string& name) {
  LintMetrics& metrics = LintMetrics::Get();
  metrics.checked.Increment();
  const std::string label = name.empty() ? "(unnamed)" : name;

  // Satisfiability: refuse rules that can never fire — every delta would
  // probe their predicate index entries for nothing.
  rules::RuleLint lint = rules::LintRule(compiled.analyzed, schema);
  if (lint.unsatisfiable) {
    metrics.rejected.Increment();
    std::string detail = "rule is unsatisfiable";
    for (const rules::LintDiagnostic& d : lint.diagnostics) {
      if (d.severity == rules::LintSeverity::kError) {
        detail = d.detail;
        break;
      }
    }
    return Status::InvalidArgument("rule '" + label +
                                   "' rejected by lint: " + detail);
  }

  AddRuleOutcome outcome;
  for (rules::LintDiagnostic& d : lint.diagnostics) {
    d.rule = label;
    outcome.warnings.push_back(std::move(d));
  }

  // Duplicate / subsumption against the live rule base: redundant rules
  // are accepted (the subscriber still gets notifications) but reported,
  // so operators can spot rule-base bloat.
  for (const LintedRule& existing : linted_rules_) {
    const bool implies_existing =
        rules::RuleSubsumes(compiled.analyzed, existing.analyzed, schema);
    const bool implied_by_existing =
        rules::RuleSubsumes(existing.analyzed, compiled.analyzed, schema);
    if (implies_existing && implied_by_existing) {
      metrics.duplicate.Increment();
      outcome.warnings.push_back(rules::LintDiagnostic{
          rules::LintCode::kDuplicateRule, rules::LintSeverity::kWarning,
          label, existing.name,
          "matches exactly the resources of rule '" + existing.name + "'"});
    } else if (implies_existing) {
      metrics.subsumed.Increment();
      outcome.warnings.push_back(rules::LintDiagnostic{
          rules::LintCode::kSubsumedRule, rules::LintSeverity::kWarning,
          label, existing.name,
          "every resource it matches is already matched by the weaker "
          "rule '" +
              existing.name + "'"});
    }
  }
  for (const rules::LintDiagnostic& d : outcome.warnings) {
    metrics.warnings.Increment();
    MDV_LOG(Warning) << rules::FormatLintDiagnostic(d);
  }

  MDV_ASSIGN_OR_RETURN(outcome.end_rule_id,
                       RegisterTree(compiled.decomposed, &outcome.created));
  linted_rules_.push_back(
      LintedRule{outcome.end_rule_id, label, compiled.analyzed});
  return outcome;
}

Status RuleStore::AdjustRefcount(int64_t rule_id, int64_t delta) {
  Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<rdbms::RowId> ids = atomic->SelectRowIds(
      {ScanCondition{AtomicRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
  if (ids.empty()) {
    return Status::NotFound("atomic rule " + std::to_string(rule_id));
  }
  Row row = *atomic->Get(ids[0]);
  int64_t refs = row[AtomicRulesCols::kRefcount].as_int() + delta;
  row[AtomicRulesCols::kRefcount] = Int(refs);
  MDV_RETURN_IF_ERROR(atomic->Update(ids[0], std::move(row)));
  if (refs <= 0) {
    return RemoveRule(rule_id);
  }
  return Status::OK();
}

Status RuleStore::RemoveRule(int64_t rule_id) {
  Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<rdbms::RowId> ids = atomic->SelectRowIds(
      {ScanCondition{AtomicRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
  if (ids.empty()) {
    return Status::NotFound("atomic rule " + std::to_string(rule_id));
  }
  Row row = *atomic->Get(ids[0]);
  const bool is_join = row[AtomicRulesCols::kKind].as_string() == "J";
  int64_t group_id = row[AtomicRulesCols::kGroupId].as_int();
  int shard = row.size() > AtomicRulesCols::kShard
                  ? static_cast<int>(row[AtomicRulesCols::kShard].as_int())
                  : 0;
  if (shard < 0 || shard >= total_shards()) shard = 0;
  MDV_RETURN_IF_ERROR(atomic->Delete(ids[0]));
  if (shard_of_.erase(rule_id) > 0) {
    --shard_rule_count_[static_cast<size_t>(shard)];
  }
  type_of_.erase(rule_id);

  // Drop the triggering-rule index rows, in the owning shard's tables
  // and in its in-memory predicate index.
  if (!is_join) {
    Table* cls = db_->GetTable(ShardTableName(kFilterRulesCLS, shard));
    cls->DeleteWhere({ScanCondition{FilterRulesCols::kRuleId, CompareOp::kEq,
                                    Int(rule_id)}});
    for (const std::string& name : AllOperatorTables()) {
      db_->GetTable(ShardTableName(name, shard))
          ->DeleteWhere({ScanCondition{FilterRulesCols::kRuleId, CompareOp::kEq,
                                       Int(rule_id)}});
    }
    indexes_[static_cast<size_t>(shard)]->RemoveRule(rule_id);
  }

  // Release group membership.
  if (is_join && group_id >= 0) {
    Table* groups = db_->GetTable(kRuleGroups);
    std::vector<rdbms::RowId> group_rows = groups->SelectRowIds(
        {ScanCondition{RuleGroupsCols::kGroupId, CompareOp::kEq,
                       Int(group_id)}});
    if (!group_rows.empty()) {
      Row group = *groups->Get(group_rows[0]);
      int64_t members = group[RuleGroupsCols::kMemberCount].as_int() - 1;
      if (members <= 0) {
        MDV_RETURN_IF_ERROR(groups->Delete(group_rows[0]));
        group_spec_of_.erase(group_id);
      } else {
        group[RuleGroupsCols::kMemberCount] = Int(members);
        MDV_RETURN_IF_ERROR(groups->Update(group_rows[0], std::move(group)));
      }
    }
  }

  // Drop materialized results of this rule.
  db_->GetTable(ShardTableName(kMaterializedResults, shard))
      ->DeleteWhere(
          {ScanCondition{ResultCols::kRuleId, CompareOp::kEq, Int(rule_id)}});

  // Remove incoming edges (this rule as target) and release the sources.
  Table* deps = db_->GetTable(kRuleDependencies);
  std::vector<Row> incoming = deps->SelectRows({ScanCondition{
      RuleDependenciesCols::kTarget, CompareOp::kEq, Int(rule_id)}});
  deps->DeleteWhere({ScanCondition{RuleDependenciesCols::kTarget,
                                   CompareOp::kEq, Int(rule_id)}});
  ForgetEdgesInto(rule_id);
  for (const Row& edge : incoming) {
    MDV_RETURN_IF_ERROR(
        AdjustRefcount(edge[RuleDependenciesCols::kSource].as_int(), -1));
  }
  return Status::OK();
}

Status RuleStore::Unregister(int64_t end_rule_id) {
  // Drop one lint entry of this end rule (AddRule keeps one per call).
  for (auto it = linted_rules_.begin(); it != linted_rules_.end(); ++it) {
    if (it->end_rule_id == end_rule_id) {
      linted_rules_.erase(it);
      break;
    }
  }
  return AdjustRefcount(end_rule_id, -1);
}

Status RuleStore::CheckConsistency() const {
  // Per-shard: every shard's in-memory index vs its FilterRules* tables.
  for (int shard = 0; shard < total_shards(); ++shard) {
    Status status =
        indexes_[static_cast<size_t>(shard)]->CheckConsistency(*db_, shard);
    if (!status.ok()) {
      return Status::Internal("shard " + std::to_string(shard) + ": " +
                              status.message());
    }
  }

  // Cross-shard: every registered rule lives in exactly one shard — its
  // AtomicRules shard column is in range and agrees with the in-memory
  // routing map, and the per-shard counts add up to the rule base.
  std::vector<int64_t> counted(static_cast<size_t>(total_shards()), 0);
  Status placement = Status::OK();
  const Table* atomic = db_->GetTable(kAtomicRules);
  atomic->Scan([&](rdbms::RowId, const Row& row) {
    if (!placement.ok()) return;
    int64_t rule_id = row[AtomicRulesCols::kRuleId].as_int();
    int64_t shard = row.size() > AtomicRulesCols::kShard
                        ? row[AtomicRulesCols::kShard].as_int()
                        : 0;
    if (shard < 0 || shard >= total_shards()) {
      placement = Status::Internal(
          "rule " + std::to_string(rule_id) + " placed in shard " +
          std::to_string(shard) + " of " + std::to_string(total_shards()));
      return;
    }
    ++counted[static_cast<size_t>(shard)];
    auto it = shard_of_.find(rule_id);
    if (it == shard_of_.end() || it->second != static_cast<int>(shard)) {
      placement = Status::Internal(
          "rule " + std::to_string(rule_id) + " shard column " +
          std::to_string(shard) + " disagrees with routing map " +
          std::to_string(it == shard_of_.end() ? -1 : it->second));
      return;
    }
    auto type_it = type_of_.find(rule_id);
    if (type_it == type_of_.end() ||
        type_it->second != row[AtomicRulesCols::kType].as_string()) {
      placement = Status::Internal("rule " + std::to_string(rule_id) +
                                   " type disagrees with the type cache");
    }
  });
  MDV_RETURN_IF_ERROR(placement);
  if (shard_of_.size() != atomic->NumRows()) {
    return Status::Internal(
        "routing map holds " + std::to_string(shard_of_.size()) +
        " rules, AtomicRules " + std::to_string(atomic->NumRows()));
  }
  for (int shard = 0; shard < total_shards(); ++shard) {
    if (counted[static_cast<size_t>(shard)] != ShardRuleCount(shard)) {
      return Status::Internal(
          "shard " + std::to_string(shard) + " count " +
          std::to_string(ShardRuleCount(shard)) + " disagrees with table " +
          std::to_string(counted[static_cast<size_t>(shard)]));
    }
  }
  if (type_of_.size() != atomic->NumRows()) {
    return Status::Internal("type cache holds " +
                            std::to_string(type_of_.size()) +
                            " rules, AtomicRules " +
                            std::to_string(atomic->NumRows()));
  }

  // Graph caches: the engine answers DependentsOf/InputsOf/GroupSpecOf
  // from memory, so every table edge must appear in both adjacency
  // directions and every group must carry its cached spec.
  size_t cached_edges = 0;
  for (const auto& [source, edges] : dependents_of_) {
    cached_edges += edges.size();
  }
  const Table* deps = db_->GetTable(kRuleDependencies);
  if (cached_edges != deps->NumRows()) {
    return Status::Internal("dependency cache holds " +
                            std::to_string(cached_edges) +
                            " edges, RuleDependencies " +
                            std::to_string(deps->NumRows()));
  }
  Status edges_ok = Status::OK();
  deps->Scan([&](rdbms::RowId, const Row& row) {
    if (!edges_ok.ok()) return;
    const int64_t source = row[RuleDependenciesCols::kSource].as_int();
    const int64_t target = row[RuleDependenciesCols::kTarget].as_int();
    const int side =
        static_cast<int>(row[RuleDependenciesCols::kSide].as_int());
    const int64_t group_id = row[RuleDependenciesCols::kGroupId].as_int();
    auto out = dependents_of_.find(source);
    const bool forward =
        out != dependents_of_.end() &&
        std::any_of(out->second.begin(), out->second.end(),
                    [&](const Dependent& edge) {
                      return edge.target == target && edge.side == side &&
                             edge.group_id == group_id;
                    });
    auto in = inputs_of_.find(target);
    const bool backward =
        in != inputs_of_.end() &&
        (side == 0 ? in->second.left : in->second.right) == source;
    if (!forward || !backward) {
      edges_ok = Status::Internal(
          "edge " + std::to_string(source) + " -> " + std::to_string(target) +
          " side " + std::to_string(side) + " missing from the " +
          (forward ? "inputs" : "dependents") + " cache");
    }
  });
  MDV_RETURN_IF_ERROR(edges_ok);
  const Table* groups = db_->GetTable(kRuleGroups);
  if (group_spec_of_.size() != groups->NumRows()) {
    return Status::Internal("group-spec cache holds " +
                            std::to_string(group_spec_of_.size()) +
                            " groups, RuleGroups " +
                            std::to_string(groups->NumRows()));
  }
  Status groups_ok = Status::OK();
  groups->Scan([&](rdbms::RowId, const Row& row) {
    if (!groups_ok.ok()) return;
    const int64_t group_id = row[RuleGroupsCols::kGroupId].as_int();
    auto it = group_spec_of_.find(group_id);
    if (it == group_spec_of_.end() ||
        it->second.left_class != row[RuleGroupsCols::kLeftClass].as_string() ||
        it->second.right_class !=
            row[RuleGroupsCols::kRightClass].as_string() ||
        it->second.register_side !=
            static_cast<int>(row[RuleGroupsCols::kRegisterSide].as_int())) {
      groups_ok = Status::Internal("group " + std::to_string(group_id) +
                                   " disagrees with the group-spec cache");
    }
  });
  return groups_ok;
}

const std::vector<RuleStore::Dependent>& RuleStore::DependentsOf(
    int64_t source_rule_id) const {
  static const std::vector<Dependent>& empty = *new std::vector<Dependent>();
  auto it = dependents_of_.find(source_rule_id);
  return it == dependents_of_.end() ? empty : it->second;
}

Result<RuleStore::JoinInputs> RuleStore::InputsOf(int64_t join_rule_id) const {
  auto it = inputs_of_.find(join_rule_id);
  if (it == inputs_of_.end() || it->second.left < 0 || it->second.right < 0) {
    return Status::Internal("join rule " + std::to_string(join_rule_id) +
                            " has incomplete dependency edges");
  }
  return it->second;
}

Result<RuleStore::GroupSpec> RuleStore::GroupSpecOf(int64_t group_id) const {
  auto it = group_spec_of_.find(group_id);
  if (it == group_spec_of_.end()) {
    return Status::NotFound("rule group " + std::to_string(group_id));
  }
  return it->second;
}

Result<std::string> RuleStore::RuleTypeOf(int64_t rule_id) const {
  auto it = type_of_.find(rule_id);
  if (it == type_of_.end()) {
    return Status::NotFound("atomic rule " + std::to_string(rule_id));
  }
  return it->second;
}

bool RuleStore::HasDependents(int64_t rule_id) const {
  auto it = dependents_of_.find(rule_id);
  return it != dependents_of_.end() && !it->second.empty();
}

size_t RuleStore::NumAtomicRules() const {
  return db_->GetTable(kAtomicRules)->NumRows();
}

size_t RuleStore::NumGroups() const {
  return db_->GetTable(kRuleGroups)->NumRows();
}

}  // namespace mdv::filter
