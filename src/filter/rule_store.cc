#include "filter/rule_store.h"

#include <cassert>

#include "common/logging.h"
#include "filter/tables.h"
#include "obs/metrics.h"
#include "rdbms/table.h"

namespace mdv::filter {

namespace {

using rdbms::CompareOp;
using rdbms::Row;
using rdbms::ScanCondition;
using rdbms::Table;
using rdbms::Value;

Value Int(int64_t v) { return Value(v); }
Value Str(std::string s) { return Value(std::move(s)); }

/// Registry handles of the rule-base linter, resolved once.
struct LintMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& checked = r.GetCounter("mdv.lint.checked_total");
  obs::Counter& rejected = r.GetCounter("mdv.lint.rejected_total");
  obs::Counter& duplicate = r.GetCounter("mdv.lint.duplicate_total");
  obs::Counter& subsumed = r.GetCounter("mdv.lint.subsumed_total");
  obs::Counter& warnings = r.GetCounter("mdv.lint.warnings_total");

  static LintMetrics& Get() {
    static LintMetrics& metrics = *new LintMetrics();
    return metrics;
  }
};

Result<CompareOp> ParseOp(const std::string& text) {
  if (text == "=") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  if (text == "contains") return CompareOp::kContains;
  return Status::Internal("unknown operator '" + text + "' in RuleGroups");
}

}  // namespace

RuleStore::RuleStore(rdbms::Database* db, RuleStoreOptions options)
    : db_(db), options_(options) {
  // Resume id counters from existing content (e.g. a reopened database).
  const Table* atomic = db_->GetTable(kAtomicRules);
  assert(atomic != nullptr && "filter tables missing; call CreateFilterTables");
  atomic->Scan([&](rdbms::RowId, const Row& row) {
    next_rule_id_ = std::max(next_rule_id_,
                             row[AtomicRulesCols::kRuleId].as_int() + 1);
  });
  const Table* groups = db_->GetTable(kRuleGroups);
  groups->Scan([&](rdbms::RowId, const Row& row) {
    next_group_id_ = std::max(next_group_id_,
                              row[RuleGroupsCols::kGroupId].as_int() + 1);
  });

  // Rebuild the predicate index from the FilterRules* tables (a fresh
  // database contributes nothing; a reopened one is re-indexed here).
  const Table* cls = db_->GetTable(kFilterRulesCLS);
  cls->Scan([&](rdbms::RowId, const Row& row) {
    predicate_index_.AddClassRule(row[FilterRulesCols::kRuleId].as_int(),
                                  row[FilterRulesCols::kClass].as_string());
  });
  for (const OperatorTableInfo& info : OperatorTableInfos()) {
    db_->GetTable(info.table)->Scan([&](rdbms::RowId, const Row& row) {
      predicate_index_.AddPredicateRule(
          row[FilterRulesCols::kRuleId].as_int(),
          row[FilterRulesCols::kClass].as_string(),
          row[FilterRulesCols::kProperty].as_string(), info.op,
          row[FilterRulesCols::kValue].as_string(),
          /*constant_is_number=*/std::string(info.table) == kFilterRulesEQN);
    });
  }
}

std::optional<int64_t> RuleStore::LookupByText(const std::string& text) const {
  const Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<Row> rows = atomic->SelectRows(
      {ScanCondition{AtomicRulesCols::kText, CompareOp::kEq, Str(text)}});
  if (rows.empty()) return std::nullopt;
  return rows[0][AtomicRulesCols::kRuleId].as_int();
}

Status RuleStore::InsertTriggeringRow(int64_t rule_id,
                                      const rules::TriggeringSpec& spec) {
  if (!spec.predicate) {
    Table* cls = db_->GetTable(kFilterRulesCLS);
    MDV_ASSIGN_OR_RETURN(rdbms::RowId ignored,
                         cls->Insert({Int(rule_id), Str(spec.class_name)}));
    (void)ignored;
    predicate_index_.AddClassRule(rule_id, spec.class_name);
    return Status::OK();
  }
  const rules::TriggeringPredicate& pred = *spec.predicate;
  std::string table_name =
      FilterRulesTableFor(pred.op, pred.constant_is_number);
  Table* table = db_->GetTable(table_name);
  MDV_ASSIGN_OR_RETURN(
      rdbms::RowId ignored,
      table->Insert({Int(rule_id), Str(spec.class_name), Str(pred.property),
                     Str(pred.constant)}));
  (void)ignored;
  predicate_index_.AddPredicateRule(rule_id, spec.class_name, pred.property,
                                    pred.op, pred.constant,
                                    pred.constant_is_number);
  return Status::OK();
}

Result<int64_t> RuleStore::GetOrCreateGroup(const rules::JoinSpec& spec,
                                            int64_t owner_rule_id) {
  Table* groups = db_->GetTable(kRuleGroups);
  std::string key = options_.use_rule_groups
                        ? spec.GroupKey()
                        : "solo|" + std::to_string(owner_rule_id);
  std::vector<rdbms::RowId> existing = groups->SelectRowIds(
      {ScanCondition{RuleGroupsCols::kKey, CompareOp::kEq, Str(key)}});
  if (!existing.empty()) {
    Row row = *groups->Get(existing[0]);
    row[RuleGroupsCols::kMemberCount] =
        Int(row[RuleGroupsCols::kMemberCount].as_int() + 1);
    int64_t group_id = row[RuleGroupsCols::kGroupId].as_int();
    MDV_RETURN_IF_ERROR(groups->Update(existing[0], std::move(row)));
    return group_id;
  }
  int64_t group_id = next_group_id_++;
  MDV_ASSIGN_OR_RETURN(
      rdbms::RowId ignored,
      groups->Insert({Int(group_id), Str(key), Str(spec.left_class),
                      Str(spec.right_class), Str(spec.lhs.property),
                      Str(rdbms::CompareOpToString(spec.op)),
                      Str(spec.rhs.property), Int(spec.register_side),
                      Int(1)}));
  (void)ignored;
  return group_id;
}

Result<int64_t> RuleStore::MergeNode(const rules::DecomposedRule& tree,
                                     int node_index,
                                     std::vector<int64_t>* id_of_node,
                                     std::vector<int64_t>* created) {
  if ((*id_of_node)[node_index] >= 0) return (*id_of_node)[node_index];
  const rules::AtomicRuleNode& node = tree.atoms[node_index];

  if (node.is_external) {
    (*id_of_node)[node_index] = node.external_rule_id;
    return node.external_rule_id;
  }

  Table* atomic = db_->GetTable(kAtomicRules);

  if (node.kind == rules::AtomicRuleKind::kTriggering) {
    std::string text = TriggeringRuleText(node.trigger);
    if (options_.merge_shared_atoms) {
      if (std::optional<int64_t> existing = LookupByText(text)) {
        (*id_of_node)[node_index] = *existing;
        return *existing;
      }
    }
    int64_t id = next_rule_id_++;
    if (!options_.merge_shared_atoms) {
      text += "|#" + std::to_string(id);  // Force private copies.
    }
    MDV_ASSIGN_OR_RETURN(
        rdbms::RowId ignored,
        atomic->Insert(
            {Int(id), Str("T"), Str(node.type), Str(text), Int(-1), Int(0)}));
    (void)ignored;
    MDV_RETURN_IF_ERROR(InsertTriggeringRow(id, node.trigger));
    if (created != nullptr) created->push_back(id);
    (*id_of_node)[node_index] = id;
    return id;
  }

  // Join rule: merge children first; their global ids are part of the
  // canonical text, so equal subtrees dedup bottom-up.
  MDV_ASSIGN_OR_RETURN(int64_t left,
                       MergeNode(tree, node.left_child, id_of_node, created));
  MDV_ASSIGN_OR_RETURN(
      int64_t right,
      MergeNode(tree, node.right_child, id_of_node, created));
  std::string text = JoinRuleText(node.join, left, right);
  if (options_.merge_shared_atoms) {
    if (std::optional<int64_t> existing = LookupByText(text)) {
      (*id_of_node)[node_index] = *existing;
      return *existing;
    }
  }
  int64_t id = next_rule_id_++;
  if (!options_.merge_shared_atoms) {
    text += "|#" + std::to_string(id);
  }
  MDV_ASSIGN_OR_RETURN(int64_t group_id, GetOrCreateGroup(node.join, id));
  MDV_ASSIGN_OR_RETURN(
      rdbms::RowId ignored,
      atomic->Insert({Int(id), Str("J"), Str(node.type), Str(text),
                      Int(group_id), Int(0)}));
  (void)ignored;

  // Dependency edges; each edge takes a reference on its source.
  Table* deps = db_->GetTable(kRuleDependencies);
  MDV_ASSIGN_OR_RETURN(rdbms::RowId e1,
                       deps->Insert({Int(left), Int(id), Int(0),
                                     Int(group_id)}));
  (void)e1;
  MDV_RETURN_IF_ERROR(AdjustRefcount(left, +1));
  MDV_ASSIGN_OR_RETURN(rdbms::RowId e2,
                       deps->Insert({Int(right), Int(id), Int(1),
                                     Int(group_id)}));
  (void)e2;
  MDV_RETURN_IF_ERROR(AdjustRefcount(right, +1));

  if (created != nullptr) created->push_back(id);
  (*id_of_node)[node_index] = id;
  return id;
}

Result<int64_t> RuleStore::RegisterTree(const rules::DecomposedRule& tree,
                                        std::vector<int64_t>* created) {
  if (created != nullptr) created->clear();
  if (tree.root < 0 || tree.atoms.empty()) {
    return Status::InvalidArgument("empty decomposed rule");
  }
  std::vector<int64_t> id_of_node(tree.atoms.size(), -1);
  MDV_ASSIGN_OR_RETURN(int64_t end_rule,
                       MergeNode(tree, tree.root, &id_of_node, created));
  MDV_RETURN_IF_ERROR(AdjustRefcount(end_rule, +1));  // Subscription ref.
  return end_rule;
}

Result<RuleStore::AddRuleOutcome> RuleStore::AddRule(
    const rules::CompiledRule& compiled, const rdf::RdfSchema& schema,
    const std::string& name) {
  LintMetrics& metrics = LintMetrics::Get();
  metrics.checked.Increment();
  const std::string label = name.empty() ? "(unnamed)" : name;

  // Satisfiability: refuse rules that can never fire — every delta would
  // probe their predicate index entries for nothing.
  rules::RuleLint lint = rules::LintRule(compiled.analyzed, schema);
  if (lint.unsatisfiable) {
    metrics.rejected.Increment();
    std::string detail = "rule is unsatisfiable";
    for (const rules::LintDiagnostic& d : lint.diagnostics) {
      if (d.severity == rules::LintSeverity::kError) {
        detail = d.detail;
        break;
      }
    }
    return Status::InvalidArgument("rule '" + label +
                                   "' rejected by lint: " + detail);
  }

  AddRuleOutcome outcome;
  for (rules::LintDiagnostic& d : lint.diagnostics) {
    d.rule = label;
    outcome.warnings.push_back(std::move(d));
  }

  // Duplicate / subsumption against the live rule base: redundant rules
  // are accepted (the subscriber still gets notifications) but reported,
  // so operators can spot rule-base bloat.
  for (const LintedRule& existing : linted_rules_) {
    const bool implies_existing =
        rules::RuleSubsumes(compiled.analyzed, existing.analyzed, schema);
    const bool implied_by_existing =
        rules::RuleSubsumes(existing.analyzed, compiled.analyzed, schema);
    if (implies_existing && implied_by_existing) {
      metrics.duplicate.Increment();
      outcome.warnings.push_back(rules::LintDiagnostic{
          rules::LintCode::kDuplicateRule, rules::LintSeverity::kWarning,
          label, existing.name,
          "matches exactly the resources of rule '" + existing.name + "'"});
    } else if (implies_existing) {
      metrics.subsumed.Increment();
      outcome.warnings.push_back(rules::LintDiagnostic{
          rules::LintCode::kSubsumedRule, rules::LintSeverity::kWarning,
          label, existing.name,
          "every resource it matches is already matched by the weaker "
          "rule '" +
              existing.name + "'"});
    }
  }
  for (const rules::LintDiagnostic& d : outcome.warnings) {
    metrics.warnings.Increment();
    MDV_LOG(Warning) << rules::FormatLintDiagnostic(d);
  }

  MDV_ASSIGN_OR_RETURN(outcome.end_rule_id,
                       RegisterTree(compiled.decomposed, &outcome.created));
  linted_rules_.push_back(
      LintedRule{outcome.end_rule_id, label, compiled.analyzed});
  return outcome;
}

Status RuleStore::AdjustRefcount(int64_t rule_id, int64_t delta) {
  Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<rdbms::RowId> ids = atomic->SelectRowIds(
      {ScanCondition{AtomicRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
  if (ids.empty()) {
    return Status::NotFound("atomic rule " + std::to_string(rule_id));
  }
  Row row = *atomic->Get(ids[0]);
  int64_t refs = row[AtomicRulesCols::kRefcount].as_int() + delta;
  row[AtomicRulesCols::kRefcount] = Int(refs);
  MDV_RETURN_IF_ERROR(atomic->Update(ids[0], std::move(row)));
  if (refs <= 0) {
    return RemoveRule(rule_id);
  }
  return Status::OK();
}

Status RuleStore::RemoveRule(int64_t rule_id) {
  Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<rdbms::RowId> ids = atomic->SelectRowIds(
      {ScanCondition{AtomicRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
  if (ids.empty()) {
    return Status::NotFound("atomic rule " + std::to_string(rule_id));
  }
  Row row = *atomic->Get(ids[0]);
  const bool is_join = row[AtomicRulesCols::kKind].as_string() == "J";
  int64_t group_id = row[AtomicRulesCols::kGroupId].as_int();
  MDV_RETURN_IF_ERROR(atomic->Delete(ids[0]));

  // Drop the triggering-rule index rows, in the tables and in the
  // in-memory predicate index.
  if (!is_join) {
    Table* cls = db_->GetTable(kFilterRulesCLS);
    cls->DeleteWhere({ScanCondition{FilterRulesCols::kRuleId, CompareOp::kEq,
                                    Int(rule_id)}});
    for (const std::string& name : AllOperatorTables()) {
      db_->GetTable(name)->DeleteWhere({ScanCondition{
          FilterRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
    }
    predicate_index_.RemoveRule(rule_id);
  }

  // Release group membership.
  if (is_join && group_id >= 0) {
    Table* groups = db_->GetTable(kRuleGroups);
    std::vector<rdbms::RowId> group_rows = groups->SelectRowIds(
        {ScanCondition{RuleGroupsCols::kGroupId, CompareOp::kEq,
                       Int(group_id)}});
    if (!group_rows.empty()) {
      Row group = *groups->Get(group_rows[0]);
      int64_t members = group[RuleGroupsCols::kMemberCount].as_int() - 1;
      if (members <= 0) {
        MDV_RETURN_IF_ERROR(groups->Delete(group_rows[0]));
      } else {
        group[RuleGroupsCols::kMemberCount] = Int(members);
        MDV_RETURN_IF_ERROR(groups->Update(group_rows[0], std::move(group)));
      }
    }
  }

  // Drop materialized results of this rule.
  db_->GetTable(kMaterializedResults)
      ->DeleteWhere(
          {ScanCondition{ResultCols::kRuleId, CompareOp::kEq, Int(rule_id)}});

  // Remove incoming edges (this rule as target) and release the sources.
  Table* deps = db_->GetTable(kRuleDependencies);
  std::vector<Row> incoming = deps->SelectRows({ScanCondition{
      RuleDependenciesCols::kTarget, CompareOp::kEq, Int(rule_id)}});
  deps->DeleteWhere({ScanCondition{RuleDependenciesCols::kTarget,
                                   CompareOp::kEq, Int(rule_id)}});
  for (const Row& edge : incoming) {
    MDV_RETURN_IF_ERROR(
        AdjustRefcount(edge[RuleDependenciesCols::kSource].as_int(), -1));
  }
  return Status::OK();
}

Status RuleStore::Unregister(int64_t end_rule_id) {
  // Drop one lint entry of this end rule (AddRule keeps one per call).
  for (auto it = linted_rules_.begin(); it != linted_rules_.end(); ++it) {
    if (it->end_rule_id == end_rule_id) {
      linted_rules_.erase(it);
      break;
    }
  }
  return AdjustRefcount(end_rule_id, -1);
}

Status RuleStore::CheckConsistency() const {
  return predicate_index_.CheckConsistency(*db_);
}

std::vector<RuleStore::Dependent> RuleStore::DependentsOf(
    int64_t source_rule_id) const {
  const Table* deps = db_->GetTable(kRuleDependencies);
  std::vector<Row> rows = deps->SelectRows({ScanCondition{
      RuleDependenciesCols::kSource, CompareOp::kEq, Int(source_rule_id)}});
  std::vector<Dependent> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    out.push_back(Dependent{
        row[RuleDependenciesCols::kTarget].as_int(),
        static_cast<int>(row[RuleDependenciesCols::kSide].as_int()),
        row[RuleDependenciesCols::kGroupId].as_int()});
  }
  return out;
}

Result<RuleStore::JoinInputs> RuleStore::InputsOf(int64_t join_rule_id) const {
  const Table* deps = db_->GetTable(kRuleDependencies);
  std::vector<Row> rows = deps->SelectRows({ScanCondition{
      RuleDependenciesCols::kTarget, CompareOp::kEq, Int(join_rule_id)}});
  JoinInputs inputs;
  for (const Row& row : rows) {
    if (row[RuleDependenciesCols::kSide].as_int() == 0) {
      inputs.left = row[RuleDependenciesCols::kSource].as_int();
    } else {
      inputs.right = row[RuleDependenciesCols::kSource].as_int();
    }
  }
  if (inputs.left < 0 || inputs.right < 0) {
    return Status::Internal("join rule " + std::to_string(join_rule_id) +
                            " has incomplete dependency edges");
  }
  return inputs;
}

Result<RuleStore::GroupSpec> RuleStore::GroupSpecOf(int64_t group_id) const {
  const Table* groups = db_->GetTable(kRuleGroups);
  std::vector<Row> rows = groups->SelectRows(
      {ScanCondition{RuleGroupsCols::kGroupId, CompareOp::kEq,
                     Int(group_id)}});
  if (rows.empty()) {
    return Status::NotFound("rule group " + std::to_string(group_id));
  }
  const Row& row = rows[0];
  GroupSpec spec;
  spec.group_id = group_id;
  spec.left_class = row[RuleGroupsCols::kLeftClass].as_string();
  spec.right_class = row[RuleGroupsCols::kRightClass].as_string();
  spec.lhs_property = row[RuleGroupsCols::kLhsProperty].as_string();
  MDV_ASSIGN_OR_RETURN(spec.op,
                       ParseOp(row[RuleGroupsCols::kOp].as_string()));
  spec.rhs_property = row[RuleGroupsCols::kRhsProperty].as_string();
  spec.register_side =
      static_cast<int>(row[RuleGroupsCols::kRegisterSide].as_int());
  return spec;
}

Result<std::string> RuleStore::RuleTypeOf(int64_t rule_id) const {
  const Table* atomic = db_->GetTable(kAtomicRules);
  std::vector<Row> rows = atomic->SelectRows(
      {ScanCondition{AtomicRulesCols::kRuleId, CompareOp::kEq, Int(rule_id)}});
  if (rows.empty()) {
    return Status::NotFound("atomic rule " + std::to_string(rule_id));
  }
  return rows[0][AtomicRulesCols::kType].as_string();
}

bool RuleStore::HasDependents(int64_t rule_id) const {
  const Table* deps = db_->GetTable(kRuleDependencies);
  return !deps->SelectRowIds({ScanCondition{RuleDependenciesCols::kSource,
                                            CompareOp::kEq, Int(rule_id)}})
              .empty();
}

size_t RuleStore::NumAtomicRules() const {
  return db_->GetTable(kAtomicRules)->NumRows();
}

size_t RuleStore::NumGroups() const {
  return db_->GetTable(kRuleGroups)->NumRows();
}

}  // namespace mdv::filter
