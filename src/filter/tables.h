#ifndef MDV_FILTER_TABLES_H_
#define MDV_FILTER_TABLES_H_

#include <string>

#include "common/status.h"
#include "rdbms/database.h"
#include "rdbms/predicate.h"

namespace mdv::filter {

/// Table names of the filter's relational representation (§3.3.4).
/// FilterData holds the document atoms (Figure 4); AtomicRules,
/// RuleDependencies and RuleGroups hold the decomposed rule base
/// (Figure 7); the FilterRules* family indexes triggering rules by the
/// operator of their where part (Figure 8; the paper shows
/// FilterRulesGT/FilterRulesCON — we materialize one table per operator
/// plus FilterRulesCLS for predicate-less triggering rules).
inline constexpr char kFilterData[] = "FilterData";
inline constexpr char kAtomicRules[] = "AtomicRules";
inline constexpr char kRuleDependencies[] = "RuleDependencies";
inline constexpr char kRuleGroups[] = "RuleGroups";
inline constexpr char kResultObjects[] = "ResultObjects";
inline constexpr char kMaterializedResults[] = "MaterializedResults";
inline constexpr char kFilterRulesCLS[] = "FilterRulesCLS";
inline constexpr char kFilterRulesEQS[] = "FilterRulesEQS";  ///< = on strings.
inline constexpr char kFilterRulesEQN[] = "FilterRulesEQN";  ///< = on numbers.
inline constexpr char kFilterRulesNE[] = "FilterRulesNE";
inline constexpr char kFilterRulesLT[] = "FilterRulesLT";
inline constexpr char kFilterRulesLE[] = "FilterRulesLE";
inline constexpr char kFilterRulesGT[] = "FilterRulesGT";
inline constexpr char kFilterRulesGE[] = "FilterRulesGE";
inline constexpr char kFilterRulesCON[] = "FilterRulesCON";

/// Physical-design knobs (§3.3.4 stresses that the filter tables are
/// "created with indexes supporting an efficient access"). The ablation
/// bench toggles `create_indexes` off to quantify that claim.
/// `num_shards` partitions the per-rule tables (FilterRules*,
/// MaterializedResults, ResultObjects) into that many shards plus one
/// overflow shard for rules whose triggering atoms span shards; 1 keeps
/// the single-table layout of the paper.
struct TableOptions {
  bool create_indexes = true;
  int num_shards = 1;
};

/// Number of table sets CreateFilterTables materializes for `num_shards`
/// regular shards: the shards themselves plus, when sharding is on, the
/// overflow shard (index == num_shards).
int TotalShardCount(int num_shards);

/// Physical name of `base`'s table in `shard`. Shard 0 keeps the legacy
/// unsuffixed name (so the single-shard layout is byte-identical to the
/// paper's), other shards append "@s<k>".
std::string ShardTableName(const std::string& base, int shard);

/// Creates all filter tables (with their indexes) in `db`. Idempotent
/// per database: AlreadyExists if called twice.
Status CreateFilterTables(rdbms::Database* db,
                          const TableOptions& options = TableOptions{});

/// The FilterRules table that stores triggering rules using `op` with a
/// constant of the given kind (numeric matters only for equality).
std::string FilterRulesTableFor(rdbms::CompareOp op, bool constant_is_number);

/// All FilterRules* table names that hold operator predicates (i.e. all
/// but FilterRulesCLS).
const std::vector<std::string>& AllOperatorTables();

/// One operator table with its comparison semantics: `op` is the
/// comparison the table's rules apply, `numeric_only` whether the
/// comparison is defined only for numeric values (EQN and the ordered
/// operators; a non-numeric side never matches, §3.3.4).
struct OperatorTableInfo {
  const char* table;
  rdbms::CompareOp op;
  bool numeric_only;
};

/// Metadata for every operator table, in AllOperatorTables() order.
const std::vector<OperatorTableInfo>& OperatorTableInfos();

/// Column positions shared by the FilterData table.
struct FilterDataCols {
  static constexpr size_t kUri = 0;
  static constexpr size_t kClass = 1;
  static constexpr size_t kProperty = 2;
  static constexpr size_t kValue = 3;
};

/// Column positions shared by every FilterRules* table.
struct FilterRulesCols {
  static constexpr size_t kRuleId = 0;
  static constexpr size_t kClass = 1;
  static constexpr size_t kProperty = 2;  // Absent in FilterRulesCLS.
  static constexpr size_t kValue = 3;     // Absent in FilterRulesCLS.
};

/// Column positions of AtomicRules.
struct AtomicRulesCols {
  static constexpr size_t kRuleId = 0;
  static constexpr size_t kKind = 1;      // "T" or "J".
  static constexpr size_t kType = 2;      // Class the rule registers.
  static constexpr size_t kText = 3;      // Canonical rule text (unique
                                          // within a shard).
  static constexpr size_t kGroupId = 4;   // -1 for triggering rules.
  static constexpr size_t kRefcount = 5;
  static constexpr size_t kShard = 6;     // Shard owning the rule's
                                          // FilterRules*/Materialized rows.
};

/// Column positions of RuleDependencies (source feeds target).
struct RuleDependenciesCols {
  static constexpr size_t kSource = 0;
  static constexpr size_t kTarget = 1;
  static constexpr size_t kSide = 2;     // 0 = left input, 1 = right input.
  static constexpr size_t kGroupId = 3;  // Group of the target (denormalized
                                         // for efficiency, §3.3.4).
};

/// Column positions of RuleGroups.
struct RuleGroupsCols {
  static constexpr size_t kGroupId = 0;
  static constexpr size_t kKey = 1;
  static constexpr size_t kLeftClass = 2;
  static constexpr size_t kRightClass = 3;
  static constexpr size_t kLhsProperty = 4;
  static constexpr size_t kOp = 5;
  static constexpr size_t kRhsProperty = 6;
  static constexpr size_t kRegisterSide = 7;
  static constexpr size_t kMemberCount = 8;
};

/// Column positions of MaterializedResults and ResultObjects.
struct ResultCols {
  static constexpr size_t kUri = 0;
  static constexpr size_t kRuleId = 1;
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_TABLES_H_
