#ifndef MDV_FILTER_DATA_STORE_H_
#define MDV_FILTER_DATA_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "filter/rule_store.h"
#include "rdbms/database.h"
#include "rdf/statement.h"

namespace mdv::filter {

/// Inserts document atoms into FilterData (§3.2, Figure 4).
Status InsertAtoms(rdbms::Database* db, const rdf::Statements& atoms);

/// Removes every FilterData atom of the given resources.
Status RemoveResourceAtoms(rdbms::Database* db,
                           const std::vector<std::string>& uri_references);

/// Reads the current FilterData atoms of the given resources (used as
/// the delta of the candidate pass, §3.5). Resources without atoms
/// (deleted) contribute nothing.
rdf::Statements AtomsOfResources(
    const rdbms::Database& db,
    const std::vector<std::string>& uri_references);

/// Deletes the given (rule → uris) pairs from MaterializedResults. The
/// update protocol purges exactly the pairs re-derived by the
/// original-version probe pass, which covers every materialized match
/// whose derivation involved a changed resource.
Status PurgeMaterialized(
    rdbms::Database* db,
    const std::map<int64_t, std::vector<std::string>>& matches);

/// Shard-routed variant: deletes each pair from the MaterializedResults
/// table of the shard owning the rule (`store` supplies the routing).
/// With an unsharded store this is the overload above.
Status PurgeMaterialized(
    rdbms::Database* db, const RuleStore& store,
    const std::map<int64_t, std::vector<std::string>>& matches);

}  // namespace mdv::filter

#endif  // MDV_FILTER_DATA_STORE_H_
