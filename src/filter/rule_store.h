#ifndef MDV_FILTER_RULE_STORE_H_
#define MDV_FILTER_RULE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "filter/predicate_index.h"
#include "rdbms/database.h"
#include "rdf/schema.h"
#include "rules/atomic_rule.h"
#include "rules/compiler.h"
#include "rules/lint.h"

namespace mdv::filter {

/// Behavioural knobs of the rule store, exposed for the ablation
/// benchmarks (DESIGN.md):
///  - `merge_shared_atoms` implements §3.3.2's duplicate elimination when
///    merging dependency trees; off, every subscription gets private
///    copies of its atomic rules.
///  - `use_rule_groups` implements §3.3.3; off, every join rule gets a
///    singleton group, so grouped evaluation degenerates to per-rule
///    evaluation.
///  - `num_shards` partitions the rule base by the (class, property)
///    affinity of each rule's triggering atoms: a whole dependency tree
///    is routed to `fingerprint(sorted triggering texts) % num_shards`,
///    each shard owning its own FilterRules*/MaterializedResults/
///    ResultObjects tables and PredicateIndex, so the engine can fan a
///    publish out across shards. Rules whose atoms span shards (they
///    extend subscription rules already placed in two different shards)
///    go to the overflow shard, evaluated last. Must match the
///    TableOptions::num_shards the database was created with; 1 keeps
///    the paper's monolithic layout.
struct RuleStoreOptions {
  bool merge_shared_atoms = true;
  bool use_rule_groups = true;
  int num_shards = 1;
};

/// Persistent representation of the global dependency graph (§3.3.2) in
/// the filter tables: AtomicRules, RuleDependencies, RuleGroups, plus the
/// FilterRules* index tables for triggering rules. Atomic rules are
/// reference-counted: a rule's count is the number of join rules that
/// consume it plus the number of subscriptions whose end rule it is;
/// unregistering cascades deletion of orphaned subtrees.
class RuleStore {
 public:
  /// `db` must already contain the filter tables (CreateFilterTables).
  explicit RuleStore(rdbms::Database* db,
                     RuleStoreOptions options = RuleStoreOptions{});

  RuleStore(const RuleStore&) = delete;
  RuleStore& operator=(const RuleStore&) = delete;

  /// Merges the dependency tree of one decomposed subscription rule into
  /// the global dependency graph, reusing existing atomic rules with the
  /// same canonical text. Returns the global id of the end rule and
  /// takes one subscription reference on it. If `created` is non-null it
  /// receives the ids of atomic rules that did not exist before, in
  /// topological order (children before parents) — the filter engine
  /// evaluates exactly these against the existing data to seed a new
  /// subscription.
  Result<int64_t> RegisterTree(const rules::DecomposedRule& tree,
                               std::vector<int64_t>* created = nullptr);

  /// Result of AddRule: the registered end rule plus the lint warnings
  /// the rule drew against the live rule base (duplicates, subsumption).
  struct AddRuleOutcome {
    int64_t end_rule_id = -1;
    /// Atomic rules that did not exist before, children before parents
    /// (see RegisterTree).
    std::vector<int64_t> created;
    std::vector<rules::LintDiagnostic> warnings;
  };

  /// Lints `compiled` and registers its dependency tree. Unsatisfiable
  /// rules are refused with InvalidArgument (counted in
  /// `mdv.lint.rejected_total`) — the paper's filter would evaluate them
  /// against every publication without ever firing. Rules that duplicate
  /// or are subsumed by an already-registered rule are accepted but
  /// reported in `warnings` and counted in `mdv.lint.duplicate_total` /
  /// `mdv.lint.subsumed_total`. `name` labels the rule in diagnostics
  /// (subscription name; may be empty).
  Result<AddRuleOutcome> AddRule(const rules::CompiledRule& compiled,
                                 const rdf::RdfSchema& schema,
                                 const std::string& name = "");

  /// Releases one subscription reference on `end_rule_id`; atomic rules
  /// whose reference count drops to zero are removed (cascading to the
  /// rules they depend on), together with their FilterRules rows, group
  /// membership, dependency edges and materialized results.
  Status Unregister(int64_t end_rule_id);

  // ---- Queries used by the filter engine. -----------------------------

  /// A dependency edge: `source` feeds input `side` of join rule
  /// `target`, which belongs to rule group `group_id`.
  ///
  /// The engine-facing queries below (DependentsOf, InputsOf,
  /// GroupSpecOf, HasDependents, RuleTypeOf) answer from write-through
  /// in-memory caches mirroring the RuleDependencies/RuleGroups/
  /// AtomicRules tables: the constructor rebuilds them from a reopened
  /// database, every registration/unregistration updates them in the
  /// same call, and CheckConsistency audits them against the tables.
  /// Publish fan-out thus never touches the shared tables for graph
  /// topology — the per-rule selects used to dominate the run and
  /// serialize parallel shard passes on the table internals.
  struct Dependent {
    int64_t target = -1;
    int side = 0;
    int64_t group_id = -1;
  };
  const std::vector<Dependent>& DependentsOf(int64_t source_rule_id) const;

  /// The two inputs of a join rule (left, right). A self-join has
  /// left == right.
  struct JoinInputs {
    int64_t left = -1;
    int64_t right = -1;
  };
  Result<JoinInputs> InputsOf(int64_t join_rule_id) const;

  /// The shared evaluation spec of a rule group.
  struct GroupSpec {
    int64_t group_id = -1;
    std::string left_class;
    std::string right_class;
    std::string lhs_property;  ///< Empty = the resource itself.
    rdbms::CompareOp op = rdbms::CompareOp::kEq;
    std::string rhs_property;
    int register_side = 0;
  };
  Result<GroupSpec> GroupSpecOf(int64_t group_id) const;

  /// Class of the resources `rule_id` registers.
  Result<std::string> RuleTypeOf(int64_t rule_id) const;

  /// True if some join rule consumes `rule_id` (its results must then be
  /// materialized, §3.4).
  bool HasDependents(int64_t rule_id) const;

  size_t NumAtomicRules() const;
  size_t NumGroups() const;

  // ---- Sharding. ------------------------------------------------------

  /// Number of regular shards (RuleStoreOptions::num_shards).
  int num_shards() const { return options_.num_shards; }
  /// Regular shards plus, when sharding is on, the overflow shard.
  int total_shards() const { return static_cast<int>(indexes_.size()); }
  /// Index of the overflow shard (== num_shards(); only meaningful when
  /// num_shards() > 1).
  int overflow_shard() const { return options_.num_shards; }
  /// Shard owning `rule_id`'s FilterRules*/MaterializedResults rows; 0
  /// for unknown rules (and always 0 when sharding is off).
  int ShardOf(int64_t rule_id) const;
  /// Number of atomic rules living in `shard`.
  int64_t ShardRuleCount(int shard) const;

  /// The in-memory predicate index over shard 0's triggering-rule base
  /// (the whole rule base when sharding is off), used by the filter
  /// engine's initial iteration. Maintained write-through: every
  /// mutation of the FilterRules* tables (registration and cascading
  /// unregistration) updates it in the same call, and the constructor
  /// rebuilds it from the tables of a reopened database.
  const PredicateIndex& predicate_index() const { return *indexes_[0]; }

  /// The predicate index of one shard.
  const PredicateIndex& predicate_index(int shard) const {
    return *indexes_[static_cast<size_t>(shard)];
  }

  /// Invariant auditor: verifies every shard's in-memory predicate index
  /// against its FilterRules* tables (see
  /// PredicateIndex::CheckConsistency), and cross-shard placement —
  /// every registered atomic rule lives in exactly one shard (its
  /// AtomicRules shard column is in range and agrees with the in-memory
  /// routing map, and per-shard rule counts add up). Internal on
  /// violation; used by tests and by the filter engine under the
  /// MDV_AUDIT_INVARIANTS debug flag.
  Status CheckConsistency() const;

  const RuleStoreOptions& options() const { return options_; }

 private:
  Result<int64_t> MergeNode(const rules::DecomposedRule& tree, int node_index,
                            int shard, std::vector<int64_t>* id_of_node,
                            std::vector<int64_t>* created);
  Result<int64_t> GetOrCreateGroup(const rules::JoinSpec& spec,
                                   int64_t owner_rule_id);
  std::optional<int64_t> LookupByText(const std::string& text,
                                      int shard) const;
  Status AdjustRefcount(int64_t rule_id, int64_t delta);
  Status RemoveRule(int64_t rule_id);
  Status InsertTriggeringRow(int64_t rule_id, int shard,
                             const rules::TriggeringSpec& spec);
  /// Target shard of a whole dependency tree (see RuleStoreOptions).
  int ShardOfTree(const rules::DecomposedRule& tree) const;
  void RecordShard(int64_t rule_id, int shard);

  /// Cache maintenance around the RuleDependencies table (write-through
  /// halves of DependentsOf/InputsOf).
  void RecordEdge(int64_t source, int64_t target, int side, int64_t group_id);
  void ForgetEdgesInto(int64_t target);

  rdbms::Database* db_;
  RuleStoreOptions options_;
  /// One predicate index per shard (index total_shards()-1 = overflow).
  std::vector<std::unique_ptr<PredicateIndex>> indexes_;
  /// rule_id → owning shard; mirrors the AtomicRules shard column.
  std::unordered_map<int64_t, int> shard_of_;
  /// source rule → outgoing dependency edges; mirrors RuleDependencies.
  std::unordered_map<int64_t, std::vector<Dependent>> dependents_of_;
  /// join rule → its two inputs; mirrors RuleDependencies by target.
  std::unordered_map<int64_t, JoinInputs> inputs_of_;
  /// group id → evaluation spec; mirrors RuleGroups (sans member count).
  std::unordered_map<int64_t, GroupSpec> group_spec_of_;
  /// rule id → registered class; mirrors the AtomicRules type column.
  std::unordered_map<int64_t, std::string> type_of_;
  /// Atomic rules per shard; mirrors the AtomicRules table.
  std::vector<int64_t> shard_rule_count_;
  int64_t next_rule_id_ = 1;
  int64_t next_group_id_ = 1;

  /// Analyzed form of rules registered through AddRule, kept for the
  /// duplicate/subsumption lint against later additions. One entry per
  /// AddRule call; Unregister drops one entry of the matching end rule.
  struct LintedRule {
    int64_t end_rule_id = -1;
    std::string name;
    rules::AnalyzedRule analyzed;
  };
  std::vector<LintedRule> linted_rules_;
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_RULE_STORE_H_
