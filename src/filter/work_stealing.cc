#include "filter/work_stealing.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace mdv::filter {

namespace {

/// Registry handles of the pool, resolved once and shared by all pools
/// (the engine owns at most one per process in practice).
struct PoolMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& batches = r.GetCounter("mdv.filter.pool.batches_total");
  obs::Counter& tasks = r.GetCounter("mdv.filter.pool.tasks_total");
  obs::Counter& steals = r.GetCounter("mdv.filter.pool.steals_total");
  obs::Counter& busy_us = r.GetCounter("mdv.filter.pool.busy_us_total");
  obs::Counter& wall_us = r.GetCounter("mdv.filter.pool.wall_us_total");
  obs::Gauge& workers = r.GetGauge("mdv.filter.pool.workers");
  obs::Gauge& utilization = r.GetGauge("mdv.filter.pool.utilization_pct");

  static PoolMetrics& Get() {
    static PoolMetrics& metrics = *new PoolMetrics();
    return metrics;
  }
};

}  // namespace

WorkStealingPool::WorkStealingPool(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  queues_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
  PoolMetrics::Get().workers.Set(num_workers);
}

WorkStealingPool::~WorkStealingPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void WorkStealingPool::ExecuteTask(std::function<void()>& task, bool stolen) {
  const int64_t start_ns = obs::NowNs();
  task();
  busy_ns_.fetch_add(obs::NowNs() - start_ns, std::memory_order_relaxed);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
}

void WorkStealingPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const PoolStats before = stats();
  const int64_t start_ns = obs::NowNs();
  if (tasks.size() == 1 || workers_.size() == 1) {
    for (auto& task : tasks) ExecuteTask(task, /*stolen=*/false);
  } else {
    // Counters first: a worker still draining the previous batch may
    // take a freshly pushed task before Run() reaches the wait below,
    // and its decrements must already be covered.
    {
      MutexLock lock(mu_);
      queued_ = tasks.size();
      pending_ = tasks.size();
    }
    for (size_t i = 0; i < tasks.size(); ++i) {
      Queue& q = *queues_[i % queues_.size()];
      MutexLock lock(q.mu);
      q.tasks.push_back(std::move(tasks[i]));
    }
    wake_.NotifyAll();
    MutexLock lock(mu_);
    while (pending_ != 0) done_.Wait(mu_);
  }
  const int64_t wall_ns = obs::NowNs() - start_ns;
  wall_ns_.fetch_add(wall_ns, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Mirror this batch's deltas into the registry (additive, so several
  // pools compose); utilization is this pool's lifetime busy share of
  // the workers' capacity.
  PoolMetrics& metrics = PoolMetrics::Get();
  const PoolStats after = stats();
  metrics.batches.Increment();
  metrics.tasks.Add(after.tasks - before.tasks);
  metrics.steals.Add(after.steals - before.steals);
  metrics.busy_us.Add((after.busy_ns - before.busy_ns) / 1000);
  metrics.wall_us.Add((after.wall_ns - before.wall_ns) / 1000);
  const int64_t capacity_ns = after.wall_ns * num_workers();
  metrics.utilization.Set(
      capacity_ns > 0 ? after.busy_ns * 100 / capacity_ns : 0);
}

PoolStats WorkStealingPool::stats() const {
  PoolStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.tasks = tasks_run_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  stats.wall_ns = wall_ns_.load(std::memory_order_relaxed);
  return stats;
}

bool WorkStealingPool::TryTakeTask(size_t self, std::function<void()>* task,
                                   bool* stolen) {
  {  // Own queue: LIFO end, keeps the locally hot task local.
    Queue& own = *queues_[self];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      *stolen = false;
      return true;
    }
  }
  // Steal: FIFO end of the other queues, oldest (largest remaining) first.
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(self + offset) % queues_.size()];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void WorkStealingPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (TryTakeTask(self, &task, &stolen)) {
      {
        MutexLock lock(mu_);
        --queued_;
      }
      ExecuteTask(task, stolen);
      MutexLock lock(mu_);
      if (--pending_ == 0) done_.NotifyAll();
      continue;
    }
    MutexLock lock(mu_);
    while (!shutdown_ && queued_ == 0) wake_.Wait(mu_);
    if (shutdown_) return;
  }
}

}  // namespace mdv::filter
