#include "filter/work_stealing.h"

#include <memory>
#include <utility>

namespace mdv::filter {

WorkStealingPool::WorkStealingPool(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  queues_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkStealingPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || workers_.size() == 1) {
    for (auto& task : tasks) task();
    return;
  }
  // Counters first: a worker still draining the previous batch may take
  // a freshly pushed task before Run() reaches the wait below, and its
  // decrements must already be covered.
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued_ = tasks.size();
    pending_ = tasks.size();
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    Queue& q = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(tasks[i]));
  }
  wake_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

bool WorkStealingPool::TryTakeTask(size_t self, std::function<void()>* task) {
  {  // Own queue: LIFO end, keeps the locally hot task local.
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal: FIFO end of the other queues, oldest (largest remaining) first.
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task;
    if (TryTakeTask(self, &task)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
      }
      task();
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
    if (shutdown_) return;
  }
}

}  // namespace mdv::filter
