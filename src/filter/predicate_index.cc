#include "filter/predicate_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "rdbms/value.h"

namespace mdv::filter {

namespace {

using rdbms::CompareOp;

/// Parses a rule constant or atom value the way the scan path does
/// (Value::TryNumeric, §3.3.4 reconversion), normalizing -0.0 so numeric
/// hash keys are portable.
std::optional<double> ParseNumeric(const std::string& text) {
  std::optional<double> num = rdbms::Value{text}.TryNumeric();
  if (num && *num == 0.0) return 0.0;
  return num;
}

void EraseRule(std::vector<int64_t>* rules, int64_t rule_id) {
  rules->erase(std::remove(rules->begin(), rules->end(), rule_id),
               rules->end());
}

template <typename Key>
void EraseFromMap(std::unordered_map<Key, std::vector<int64_t>>* map,
                  const Key& key, int64_t rule_id) {
  auto it = map->find(key);
  if (it == map->end()) return;
  EraseRule(&it->second, rule_id);
  if (it->second.empty()) map->erase(it);
}

void EraseSorted(std::vector<std::pair<double, int64_t>>* entries,
                 double constant, int64_t rule_id) {
  auto range = std::equal_range(
      entries->begin(), entries->end(), std::make_pair(constant, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rule_id) {
      entries->erase(it);
      return;
    }
  }
}

void InsertSorted(std::vector<std::pair<double, int64_t>>* entries,
                  double constant, int64_t rule_id) {
  auto pos = std::upper_bound(
      entries->begin(), entries->end(), std::make_pair(constant, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  entries->insert(pos, {constant, rule_id});
}

}  // namespace

std::string PredicateIndex::BucketKey(const std::string& class_name,
                                      const std::string& property) {
  std::string key;
  key.reserve(class_name.size() + 1 + property.size());
  key += class_name;
  key += '\x1f';
  key += property;
  return key;
}

void PredicateIndex::AddClassRule(int64_t rule_id,
                                  const std::string& class_name) {
  class_rules_[class_name].push_back(rule_id);
  entries_of_rule_[rule_id].push_back(
      RuleEntry{/*is_class_rule=*/true, class_name, CompareOp::kEq,
                /*is_eqn=*/false, "", std::nullopt});
  ++num_entries_;
}

void PredicateIndex::AddPredicateRule(int64_t rule_id,
                                      const std::string& class_name,
                                      const std::string& property,
                                      CompareOp op,
                                      const std::string& constant,
                                      bool constant_is_number) {
  std::string key = BucketKey(class_name, property);
  Bucket& bucket = buckets_[key];
  std::optional<double> num = ParseNumeric(constant);
  const bool is_eqn = op == CompareOp::kEq && constant_is_number;

  switch (op) {
    case CompareOp::kEq:
      if (is_eqn) {
        // A non-numeric constant in an EQN row can never match
        // (CompareNumericTexts is false when either side fails to
        // parse); keep only the reverse entry so removal still works.
        if (num) bucket.eqn[*num].push_back(rule_id);
      } else {
        bucket.eqs[constant].push_back(rule_id);
      }
      break;
    case CompareOp::kNe:
      bucket.ne_all.push_back(rule_id);
      if (num) {
        bucket.ne_num[*num].push_back(rule_id);
      } else {
        bucket.ne_str[constant].push_back(rule_id);
      }
      break;
    case CompareOp::kLt:
      if (num) InsertSorted(&bucket.lt, *num, rule_id);
      break;
    case CompareOp::kLe:
      if (num) InsertSorted(&bucket.le, *num, rule_id);
      break;
    case CompareOp::kGt:
      if (num) InsertSorted(&bucket.gt, *num, rule_id);
      break;
    case CompareOp::kGe:
      if (num) InsertSorted(&bucket.ge, *num, rule_id);
      break;
    case CompareOp::kContains:
      bucket.con.emplace_back(constant, rule_id);
      break;
  }
  entries_of_rule_[rule_id].push_back(
      RuleEntry{/*is_class_rule=*/false, std::move(key), op, is_eqn, constant,
                num});
  ++num_entries_;
}

void PredicateIndex::RemoveRule(int64_t rule_id) {
  auto rit = entries_of_rule_.find(rule_id);
  if (rit == entries_of_rule_.end()) return;
  for (const RuleEntry& entry : rit->second) {
    if (entry.is_class_rule) {
      EraseFromMap(&class_rules_, entry.key, rule_id);
      --num_entries_;
      continue;
    }
    --num_entries_;
    auto bit = buckets_.find(entry.key);
    // The bucket is gone once a sibling entry emptied it; never-matching
    // entries (non-numeric constants on numeric-only ops) leave nothing
    // behind, so this is reachable.
    if (bit == buckets_.end()) continue;
    Bucket& bucket = bit->second;
    switch (entry.op) {
      case CompareOp::kEq:
        if (entry.is_eqn) {
          if (entry.constant_num) {
            EraseFromMap(&bucket.eqn, *entry.constant_num, rule_id);
          }
        } else {
          EraseFromMap(&bucket.eqs, entry.constant, rule_id);
        }
        break;
      case CompareOp::kNe:
        EraseRule(&bucket.ne_all, rule_id);
        if (entry.constant_num) {
          EraseFromMap(&bucket.ne_num, *entry.constant_num, rule_id);
        } else {
          EraseFromMap(&bucket.ne_str, entry.constant, rule_id);
        }
        break;
      case CompareOp::kLt:
        if (entry.constant_num) {
          EraseSorted(&bucket.lt, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kLe:
        if (entry.constant_num) {
          EraseSorted(&bucket.le, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kGt:
        if (entry.constant_num) {
          EraseSorted(&bucket.gt, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kGe:
        if (entry.constant_num) {
          EraseSorted(&bucket.ge, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kContains: {
        auto& con = bucket.con;
        con.erase(std::remove_if(con.begin(), con.end(),
                                 [&](const auto& e) {
                                   return e.second == rule_id;
                                 }),
                  con.end());
        break;
      }
    }
    if (bucket.empty()) buckets_.erase(bit);
  }
  entries_of_rule_.erase(rit);
}

void PredicateIndex::MatchClass(const std::string& class_name,
                                std::vector<int64_t>* out) const {
  auto it = class_rules_.find(class_name);
  if (it == class_rules_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

const PredicateIndex::Bucket* PredicateIndex::FindBucket(
    const std::string& class_name, const std::string& property) const {
  auto it = buckets_.find(BucketKey(class_name, property));
  return it == buckets_.end() ? nullptr : &it->second;
}

void PredicateIndex::Match(const Bucket& bucket, const std::string& text,
                           const std::optional<double>& text_num,
                           std::vector<int64_t>* out) const {
  // EQS: exact string equality (the paper's OID access path, Figure 11).
  if (auto it = bucket.eqs.find(text); it != bucket.eqs.end()) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }

  if (text_num) {
    double x = *text_num == 0.0 ? 0.0 : *text_num;
    // EQN: numeric equality.
    if (auto it = bucket.eqn.find(x); it != bucket.eqn.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
    // Ordered operators: the matching constants are one contiguous run
    // of the sorted array. `text op constant` must hold.
    auto cmp = [](const std::pair<double, int64_t>& a, double b) {
      return a.first < b;
    };
    // LT: x < c  →  constants strictly above x.
    for (auto it = std::upper_bound(
             bucket.lt.begin(), bucket.lt.end(), x,
             [](double b, const auto& a) { return b < a.first; });
         it != bucket.lt.end(); ++it) {
      out->push_back(it->second);
    }
    // LE: x <= c  →  constants at or above x.
    for (auto it = std::lower_bound(bucket.le.begin(), bucket.le.end(), x,
                                    cmp);
         it != bucket.le.end(); ++it) {
      out->push_back(it->second);
    }
    // GT: x > c  →  constants strictly below x.
    for (auto it = bucket.gt.begin(),
              end = std::lower_bound(bucket.gt.begin(), bucket.gt.end(), x,
                                     cmp);
         it != end; ++it) {
      out->push_back(it->second);
    }
    // GE: x >= c  →  constants at or below x.
    for (auto it = bucket.ge.begin(),
              end = std::upper_bound(
                  bucket.ge.begin(), bucket.ge.end(), x,
                  [](double b, const auto& a) { return b < a.first; });
         it != end; ++it) {
      out->push_back(it->second);
    }
  }

  // NE: all members except the constants equal to the atom value. A
  // numeric atom can only equal numeric constants and a non-numeric atom
  // only string constants (equal strings parse identically), so the
  // exclusion set is a single hash lookup.
  if (!bucket.ne_all.empty()) {
    const std::vector<int64_t>* equal = nullptr;
    if (text_num) {
      double x = *text_num == 0.0 ? 0.0 : *text_num;
      if (auto it = bucket.ne_num.find(x); it != bucket.ne_num.end()) {
        equal = &it->second;
      }
    } else {
      if (auto it = bucket.ne_str.find(text); it != bucket.ne_str.end()) {
        equal = &it->second;
      }
    }
    if (equal == nullptr) {
      out->insert(out->end(), bucket.ne_all.begin(), bucket.ne_all.end());
    } else {
      for (int64_t rule_id : bucket.ne_all) {
        if (std::find(equal->begin(), equal->end(), rule_id) == equal->end()) {
          out->push_back(rule_id);
        }
      }
    }
  }

  // contains: substring match cannot be indexed; scan the (pre-parsed)
  // constants.
  for (const auto& [constant, rule_id] : bucket.con) {
    if (Contains(text, constant)) out->push_back(rule_id);
  }
}

}  // namespace mdv::filter
