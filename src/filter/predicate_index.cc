#include "filter/predicate_index.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "filter/tables.h"
#include "rdbms/database.h"
#include "rdbms/table.h"
#include "rdbms/value.h"

namespace mdv::filter {

namespace {

using rdbms::CompareOp;

/// Parses a rule constant or atom value the way the scan path does
/// (Value::TryNumeric, §3.3.4 reconversion), normalizing -0.0 so numeric
/// hash keys are portable.
std::optional<double> ParseNumeric(const std::string& text) {
  std::optional<double> num = rdbms::Value{text}.TryNumeric();
  if (num && *num == 0.0) return 0.0;
  return num;
}

void EraseRule(std::vector<int64_t>* rules, int64_t rule_id) {
  rules->erase(std::remove(rules->begin(), rules->end(), rule_id),
               rules->end());
}

template <typename Key>
void EraseFromMap(std::unordered_map<Key, std::vector<int64_t>>* map,
                  const Key& key, int64_t rule_id) {
  auto it = map->find(key);
  if (it == map->end()) return;
  EraseRule(&it->second, rule_id);
  if (it->second.empty()) map->erase(it);
}

void EraseSorted(std::vector<std::pair<double, int64_t>>* entries,
                 double constant, int64_t rule_id) {
  auto range = std::equal_range(
      entries->begin(), entries->end(), std::make_pair(constant, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rule_id) {
      entries->erase(it);
      return;
    }
  }
}

void InsertSorted(std::vector<std::pair<double, int64_t>>* entries,
                  double constant, int64_t rule_id) {
  auto pos = std::upper_bound(
      entries->begin(), entries->end(), std::make_pair(constant, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  entries->insert(pos, {constant, rule_id});
}

}  // namespace

std::string PredicateIndex::BucketKey(const std::string& class_name,
                                      const std::string& property) {
  std::string key;
  key.reserve(class_name.size() + 1 + property.size());
  key += class_name;
  key += '\x1f';
  key += property;
  return key;
}

void PredicateIndex::AddClassRule(int64_t rule_id,
                                  const std::string& class_name) {
  class_rules_[class_name].push_back(rule_id);
  entries_of_rule_[rule_id].push_back(
      RuleEntry{/*is_class_rule=*/true, class_name, CompareOp::kEq,
                /*is_eqn=*/false, "", std::nullopt});
  ++num_entries_;
}

void PredicateIndex::AddPredicateRule(int64_t rule_id,
                                      const std::string& class_name,
                                      const std::string& property,
                                      CompareOp op,
                                      const std::string& constant,
                                      bool constant_is_number) {
  std::string key = BucketKey(class_name, property);
  Bucket& bucket = buckets_[key];
  std::optional<double> num = ParseNumeric(constant);
  const bool is_eqn = op == CompareOp::kEq && constant_is_number;

  switch (op) {
    case CompareOp::kEq:
      if (is_eqn) {
        // A non-numeric constant in an EQN row can never match
        // (CompareNumericTexts is false when either side fails to
        // parse); keep only the reverse entry so removal still works.
        if (num) bucket.eqn[*num].push_back(rule_id);
      } else {
        bucket.eqs[constant].push_back(rule_id);
      }
      break;
    case CompareOp::kNe:
      bucket.ne_all.push_back(rule_id);
      if (num) {
        bucket.ne_num[*num].push_back(rule_id);
      } else {
        bucket.ne_str[constant].push_back(rule_id);
      }
      break;
    case CompareOp::kLt:
      if (num) InsertSorted(&bucket.lt, *num, rule_id);
      break;
    case CompareOp::kLe:
      if (num) InsertSorted(&bucket.le, *num, rule_id);
      break;
    case CompareOp::kGt:
      if (num) InsertSorted(&bucket.gt, *num, rule_id);
      break;
    case CompareOp::kGe:
      if (num) InsertSorted(&bucket.ge, *num, rule_id);
      break;
    case CompareOp::kContains:
      bucket.con.emplace_back(constant, rule_id);
      break;
  }
  entries_of_rule_[rule_id].push_back(
      RuleEntry{/*is_class_rule=*/false, std::move(key), op, is_eqn, constant,
                num});
  ++num_entries_;
}

void PredicateIndex::RemoveRule(int64_t rule_id) {
  auto rit = entries_of_rule_.find(rule_id);
  if (rit == entries_of_rule_.end()) return;
  for (const RuleEntry& entry : rit->second) {
    if (entry.is_class_rule) {
      EraseFromMap(&class_rules_, entry.key, rule_id);
      --num_entries_;
      continue;
    }
    --num_entries_;
    auto bit = buckets_.find(entry.key);
    // The bucket is gone once a sibling entry emptied it; never-matching
    // entries (non-numeric constants on numeric-only ops) leave nothing
    // behind, so this is reachable.
    if (bit == buckets_.end()) continue;
    Bucket& bucket = bit->second;
    switch (entry.op) {
      case CompareOp::kEq:
        if (entry.is_eqn) {
          if (entry.constant_num) {
            EraseFromMap(&bucket.eqn, *entry.constant_num, rule_id);
          }
        } else {
          EraseFromMap(&bucket.eqs, entry.constant, rule_id);
        }
        break;
      case CompareOp::kNe:
        EraseRule(&bucket.ne_all, rule_id);
        if (entry.constant_num) {
          EraseFromMap(&bucket.ne_num, *entry.constant_num, rule_id);
        } else {
          EraseFromMap(&bucket.ne_str, entry.constant, rule_id);
        }
        break;
      case CompareOp::kLt:
        if (entry.constant_num) {
          EraseSorted(&bucket.lt, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kLe:
        if (entry.constant_num) {
          EraseSorted(&bucket.le, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kGt:
        if (entry.constant_num) {
          EraseSorted(&bucket.gt, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kGe:
        if (entry.constant_num) {
          EraseSorted(&bucket.ge, *entry.constant_num, rule_id);
        }
        break;
      case CompareOp::kContains: {
        auto& con = bucket.con;
        con.erase(std::remove_if(con.begin(), con.end(),
                                 [&](const auto& e) {
                                   return e.second == rule_id;
                                 }),
                  con.end());
        break;
      }
    }
    if (bucket.empty()) buckets_.erase(bit);
  }
  entries_of_rule_.erase(rit);
}

void PredicateIndex::MatchClass(const std::string& class_name,
                                std::vector<int64_t>* out) const {
  auto it = class_rules_.find(class_name);
  if (it == class_rules_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

const PredicateIndex::Bucket* PredicateIndex::FindBucket(
    const std::string& class_name, const std::string& property) const {
  auto it = buckets_.find(BucketKey(class_name, property));
  return it == buckets_.end() ? nullptr : &it->second;
}

void PredicateIndex::Match(const Bucket& bucket, const std::string& text,
                           const std::optional<double>& text_num,
                           std::vector<int64_t>* out) const {
  // EQS: exact string equality (the paper's OID access path, Figure 11).
  if (auto it = bucket.eqs.find(text); it != bucket.eqs.end()) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }

  if (text_num) {
    double x = *text_num == 0.0 ? 0.0 : *text_num;
    // EQN: numeric equality.
    if (auto it = bucket.eqn.find(x); it != bucket.eqn.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
    // Ordered operators: the matching constants are one contiguous run
    // of the sorted array. `text op constant` must hold.
    auto cmp = [](const std::pair<double, int64_t>& a, double b) {
      return a.first < b;
    };
    // LT: x < c  →  constants strictly above x.
    for (auto it = std::upper_bound(
             bucket.lt.begin(), bucket.lt.end(), x,
             [](double b, const auto& a) { return b < a.first; });
         it != bucket.lt.end(); ++it) {
      out->push_back(it->second);
    }
    // LE: x <= c  →  constants at or above x.
    for (auto it = std::lower_bound(bucket.le.begin(), bucket.le.end(), x,
                                    cmp);
         it != bucket.le.end(); ++it) {
      out->push_back(it->second);
    }
    // GT: x > c  →  constants strictly below x.
    for (auto it = bucket.gt.begin(),
              end = std::lower_bound(bucket.gt.begin(), bucket.gt.end(), x,
                                     cmp);
         it != end; ++it) {
      out->push_back(it->second);
    }
    // GE: x >= c  →  constants at or below x.
    for (auto it = bucket.ge.begin(),
              end = std::upper_bound(
                  bucket.ge.begin(), bucket.ge.end(), x,
                  [](double b, const auto& a) { return b < a.first; });
         it != end; ++it) {
      out->push_back(it->second);
    }
  }

  // NE: all members except the constants equal to the atom value. A
  // numeric atom can only equal numeric constants and a non-numeric atom
  // only string constants (equal strings parse identically), so the
  // exclusion set is a single hash lookup.
  if (!bucket.ne_all.empty()) {
    const std::vector<int64_t>* equal = nullptr;
    if (text_num) {
      double x = *text_num == 0.0 ? 0.0 : *text_num;
      if (auto it = bucket.ne_num.find(x); it != bucket.ne_num.end()) {
        equal = &it->second;
      }
    } else {
      if (auto it = bucket.ne_str.find(text); it != bucket.ne_str.end()) {
        equal = &it->second;
      }
    }
    if (equal == nullptr) {
      out->insert(out->end(), bucket.ne_all.begin(), bucket.ne_all.end());
    } else {
      for (int64_t rule_id : bucket.ne_all) {
        if (std::find(equal->begin(), equal->end(), rule_id) == equal->end()) {
          out->push_back(rule_id);
        }
      }
    }
  }

  // contains: substring match cannot be indexed; scan the (pre-parsed)
  // constants.
  for (const auto& [constant, rule_id] : bucket.con) {
    if (Contains(text, constant)) out->push_back(rule_id);
  }
}

namespace {

/// Canonical text of one index entry, used to diff the reverse map
/// against the FilterRules* tables without caring about order.
std::string EntryLabel(bool is_class_rule, const std::string& key,
                       rdbms::CompareOp op, bool is_eqn,
                       const std::string& constant) {
  if (is_class_rule) return "CLS|" + key;
  std::string label = key;
  label += '|';
  label += rdbms::CompareOpToString(op);
  label += is_eqn ? "|N|" : "|S|";
  label += constant;
  return label;
}

bool ContainsId(const std::vector<int64_t>& rules, int64_t rule_id) {
  return std::find(rules.begin(), rules.end(), rule_id) != rules.end();
}

bool ContainsSorted(const std::vector<std::pair<double, int64_t>>& entries,
                    double constant, int64_t rule_id) {
  auto range = std::equal_range(
      entries.begin(), entries.end(), std::make_pair(constant, int64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rule_id) return true;
  }
  return false;
}

Status Violation(const std::string& what) {
  return Status::Internal("predicate index inconsistent: " + what);
}

}  // namespace

Status PredicateIndex::CheckConsistency(const rdbms::Database& db,
                                        int shard) const {
  using rdbms::Row;

  // ---- Reverse map vs the FilterRules* tables. ------------------------
  // Both sides become multisets of (rule id, canonical entry label); the
  // write-through contract requires them to be identical.
  std::map<int64_t, std::vector<std::string>> expected;
  const rdbms::Table* cls =
      db.GetTable(ShardTableName(kFilterRulesCLS, shard));
  if (cls == nullptr) return Violation("FilterRulesCLS table missing");
  cls->Scan([&](rdbms::RowId, const Row& row) {
    expected[row[FilterRulesCols::kRuleId].as_int()].push_back(
        EntryLabel(/*is_class_rule=*/true,
                   row[FilterRulesCols::kClass].as_string(),
                   rdbms::CompareOp::kEq, false, ""));
  });
  for (const OperatorTableInfo& info : OperatorTableInfos()) {
    const rdbms::Table* table = db.GetTable(ShardTableName(info.table, shard));
    if (table == nullptr) {
      return Violation(std::string(info.table) + " table missing");
    }
    const bool is_eqn = std::string(info.table) == kFilterRulesEQN;
    table->Scan([&](rdbms::RowId, const Row& row) {
      expected[row[FilterRulesCols::kRuleId].as_int()].push_back(EntryLabel(
          /*is_class_rule=*/false,
          BucketKey(row[FilterRulesCols::kClass].as_string(),
                    row[FilterRulesCols::kProperty].as_string()),
          info.op, is_eqn, row[FilterRulesCols::kValue].as_string()));
    });
  }

  std::map<int64_t, std::vector<std::string>> actual;
  size_t reverse_population = 0;
  for (const auto& [rule_id, entries] : entries_of_rule_) {
    for (const RuleEntry& entry : entries) {
      actual[rule_id].push_back(EntryLabel(entry.is_class_rule, entry.key,
                                           entry.op, entry.is_eqn,
                                           entry.constant));
      ++reverse_population;
    }
  }
  for (auto& [rule_id, labels] : expected) std::sort(labels.begin(),
                                                     labels.end());
  for (auto& [rule_id, labels] : actual) std::sort(labels.begin(),
                                                   labels.end());
  if (expected != actual) {
    for (const auto& [rule_id, labels] : expected) {
      auto it = actual.find(rule_id);
      if (it == actual.end() || it->second != labels) {
        return Violation("rule " + std::to_string(rule_id) +
                         " disagrees with the FilterRules tables");
      }
    }
    for (const auto& [rule_id, labels] : actual) {
      if (expected.count(rule_id) == 0) {
        return Violation("rule " + std::to_string(rule_id) +
                         " is indexed but has no FilterRules rows");
      }
    }
    return Violation("entry multisets disagree");  // Unreachable.
  }

  if (reverse_population != num_entries_) {
    return Violation("NumEntries() = " + std::to_string(num_entries_) +
                     " but the reverse map holds " +
                     std::to_string(reverse_population) + " entries");
  }

  // ---- Reverse map vs the bucket containers. --------------------------
  // Every entry must be present in its container; counting the expected
  // elements per container and comparing with the real populations also
  // catches stale leftovers.
  size_t expected_elements = 0;
  for (const auto& [rule_id, entries] : entries_of_rule_) {
    for (const RuleEntry& entry : entries) {
      const std::string id = "rule " + std::to_string(rule_id);
      if (entry.is_class_rule) {
        auto it = class_rules_.find(entry.key);
        if (it == class_rules_.end() || !ContainsId(it->second, rule_id)) {
          return Violation(id + " missing from its class bucket");
        }
        ++expected_elements;
        continue;
      }
      auto bit = buckets_.find(entry.key);
      const Bucket* bucket = bit == buckets_.end() ? nullptr : &bit->second;
      auto require = [&](bool present, const char* container) -> Status {
        if (!present) {
          return Violation(id + " missing from the " + container +
                           " container of its bucket");
        }
        ++expected_elements;
        return Status::OK();
      };
      switch (entry.op) {
        case rdbms::CompareOp::kEq:
          if (entry.is_eqn) {
            if (!entry.constant_num) break;  // Never matches; unindexed.
            MDV_RETURN_IF_ERROR(require(
                bucket != nullptr &&
                    bucket->eqn.count(*entry.constant_num) != 0 &&
                    ContainsId(bucket->eqn.at(*entry.constant_num), rule_id),
                "eqn"));
          } else {
            MDV_RETURN_IF_ERROR(
                require(bucket != nullptr &&
                            bucket->eqs.count(entry.constant) != 0 &&
                            ContainsId(bucket->eqs.at(entry.constant),
                                       rule_id),
                        "eqs"));
          }
          break;
        case rdbms::CompareOp::kNe: {
          MDV_RETURN_IF_ERROR(require(
              bucket != nullptr && ContainsId(bucket->ne_all, rule_id),
              "ne_all"));
          bool in_split;
          if (entry.constant_num) {
            in_split = bucket->ne_num.count(*entry.constant_num) != 0 &&
                       ContainsId(bucket->ne_num.at(*entry.constant_num),
                                  rule_id);
          } else {
            in_split = bucket->ne_str.count(entry.constant) != 0 &&
                       ContainsId(bucket->ne_str.at(entry.constant), rule_id);
          }
          MDV_RETURN_IF_ERROR(require(in_split, "ne split"));
          break;
        }
        case rdbms::CompareOp::kLt:
        case rdbms::CompareOp::kLe:
        case rdbms::CompareOp::kGt:
        case rdbms::CompareOp::kGe: {
          if (!entry.constant_num) break;  // Never matches; unindexed.
          const std::vector<std::pair<double, int64_t>>* ordered = nullptr;
          if (bucket != nullptr) {
            ordered = entry.op == rdbms::CompareOp::kLt   ? &bucket->lt
                      : entry.op == rdbms::CompareOp::kLe ? &bucket->le
                      : entry.op == rdbms::CompareOp::kGt ? &bucket->gt
                                                          : &bucket->ge;
          }
          MDV_RETURN_IF_ERROR(
              require(ordered != nullptr &&
                          ContainsSorted(*ordered, *entry.constant_num,
                                         rule_id),
                      "ordered"));
          break;
        }
        case rdbms::CompareOp::kContains: {
          bool present = false;
          if (bucket != nullptr) {
            for (const auto& [constant, id_in_con] : bucket->con) {
              present = present ||
                        (id_in_con == rule_id && constant == entry.constant);
            }
          }
          MDV_RETURN_IF_ERROR(require(present, "con"));
          break;
        }
      }
    }
  }

  size_t actual_elements = 0;
  for (const auto& [key, rules] : class_rules_) {
    actual_elements += rules.size();
  }
  for (const auto& [key, bucket] : buckets_) {
    if (bucket.empty()) return Violation("empty bucket retained for " + key);
    actual_elements += bucket.lt.size() + bucket.le.size() +
                       bucket.gt.size() + bucket.ge.size() +
                       bucket.ne_all.size() + bucket.con.size();
    for (const auto& [num, rules] : bucket.eqn) actual_elements += rules.size();
    for (const auto& [str, rules] : bucket.eqs) actual_elements += rules.size();
    for (const auto& [num, rules] : bucket.ne_num) {
      actual_elements += rules.size();
    }
    for (const auto& [str, rules] : bucket.ne_str) {
      actual_elements += rules.size();
    }
    // Ordered arrays must be sorted — Match binary-searches them.
    for (const auto* ordered : {&bucket.lt, &bucket.le, &bucket.gt,
                                &bucket.ge}) {
      for (size_t i = 1; i < ordered->size(); ++i) {
        if ((*ordered)[i - 1].first > (*ordered)[i].first) {
          return Violation("ordered array out of order in bucket " + key);
        }
      }
    }
  }
  if (actual_elements != expected_elements) {
    return Violation("buckets hold " + std::to_string(actual_elements) +
                     " elements but the reverse map accounts for " +
                     std::to_string(expected_elements));
  }
  return Status::OK();
}

}  // namespace mdv::filter
