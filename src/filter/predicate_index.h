#ifndef MDV_FILTER_PREDICATE_INDEX_H_
#define MDV_FILTER_PREDICATE_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdbms/predicate.h"

namespace mdv::rdbms {
class Database;
}  // namespace mdv::rdbms

namespace mdv::filter {

/// In-memory predicate index over the triggering-rule base: the access
/// path of the filter's initial iteration.
///
/// The FilterRules* tables give the EQS table a value index (one point
/// lookup per atom, Figure 11), but the ordered-operator tables
/// (LT/LE/GT/GE/EQN/NE) are probed by property and scanned row by row,
/// reconverting the stored string constant per row (§3.3.4) — their cost
/// grows linearly with the number of rules on the probed property
/// (Figures 12-15). This index removes that scan: per (class, property)
/// it keeps the rule constants parsed once, sorted for the ordered
/// operators, so a delta atom finds its matching rules with one binary
/// search plus a range emit (O(log n + matches) instead of O(n)).
///
/// Layout per (class, property) bucket:
///  - LT/LE/GT/GE: one array of (numeric constant, rule id) sorted by
///    constant; the matching rules form a contiguous suffix or prefix.
///  - EQN: hash map numeric constant → rule ids.
///  - EQS: hash map string constant → rule ids.
///  - NE: the full member list plus hash maps of the constants, so the
///    (near-total) match set is "all members minus the equal bucket".
///  - CON: the (constant, rule id) list; substring match cannot be
///    indexed and stays a per-rule scan, but without row reconversion.
/// Predicate-less class rules live in a class → rule ids map.
///
/// Match semantics are exactly those of the relational scan path
/// (engine.cc CompareTexts/CompareNumericTexts): ordered operators and
/// EQN compare numerically and never match non-numeric text; EQS is
/// string equality; NE compares numerically when both sides parse as
/// numbers and as strings otherwise (equal strings parse identically, so
/// the equal bucket splits cleanly by constant kind). The differential
/// property test (tests/filter_predicate_index_test.cc) holds the two
/// paths equal on randomized workloads.
///
/// The index is maintained write-through by RuleStore: every
/// registration/unregistration of a triggering rule updates the
/// FilterRules tables and this index in the same call, so the two can
/// never desync.
class PredicateIndex {
 public:
  PredicateIndex() = default;

  PredicateIndex(const PredicateIndex&) = delete;
  PredicateIndex& operator=(const PredicateIndex&) = delete;

  // ---- Maintenance (called by RuleStore). -----------------------------

  /// Adds a predicate-less class rule.
  void AddClassRule(int64_t rule_id, const std::string& class_name);

  /// Adds a triggering rule `class.property op constant`.
  /// `constant_is_number` distinguishes EQN from EQS for kEq (mirrors
  /// FilterRulesTableFor).
  void AddPredicateRule(int64_t rule_id, const std::string& class_name,
                        const std::string& property, rdbms::CompareOp op,
                        const std::string& constant, bool constant_is_number);

  /// Removes every entry of `rule_id`. No-op for unknown ids.
  void RemoveRule(int64_t rule_id);

  // ---- Matching (called by FilterEngine). -----------------------------

  /// Rules of predicate-less class subscriptions on `class_name`.
  void MatchClass(const std::string& class_name,
                  std::vector<int64_t>* out) const;

  /// Opaque handle to one (class, property) bucket, so callers probing
  /// many atoms with the same key pay the bucket lookup once.
  struct Bucket;
  const Bucket* FindBucket(const std::string& class_name,
                           const std::string& property) const;

  /// Appends the ids of all rules in `bucket` whose predicate matches
  /// the atom value `text` (parsed at most once, by the caller, into
  /// `text_num`).
  void Match(const Bucket& bucket, const std::string& text,
             const std::optional<double>& text_num,
             std::vector<int64_t>* out) const;

  /// Total number of indexed rule entries (class rules included).
  size_t NumEntries() const { return num_entries_; }

  // ---- Invariant auditing. --------------------------------------------

  /// Verifies this index against the FilterRules* tables of `db` (the
  /// authoritative rule base) and against itself:
  ///  - every table row has exactly one matching index entry and vice
  ///    versa (the write-through contract with RuleStore);
  ///  - every reverse entry is present in its bucket container, the
  ///    ordered arrays are sorted, and no bucket holds stale elements;
  ///  - `NumEntries()` equals the reverse-map population.
  /// Returns Internal naming the first violated invariant. O(rules +
  /// bucket elements); called from tests and, under the
  /// MDV_AUDIT_INVARIANTS debug flag, after every filter run. `shard`
  /// selects which shard's FilterRules* tables to audit against (a
  /// sharded RuleStore keeps one PredicateIndex per shard).
  Status CheckConsistency(const rdbms::Database& db, int shard = 0) const;

  struct Bucket {
    /// Sorted by constant; one vector per ordered operator.
    std::vector<std::pair<double, int64_t>> lt, le, gt, ge;
    /// Numeric equality / string equality.
    std::unordered_map<double, std::vector<int64_t>> eqn;
    std::unordered_map<std::string, std::vector<int64_t>> eqs;
    /// NE: all members, plus the constants bucketed for exclusion.
    std::vector<int64_t> ne_all;
    std::unordered_map<double, std::vector<int64_t>> ne_num;
    std::unordered_map<std::string, std::vector<int64_t>> ne_str;
    /// contains: (constant, rule id), scanned per atom.
    std::vector<std::pair<std::string, int64_t>> con;

    bool empty() const {
      return lt.empty() && le.empty() && gt.empty() && ge.empty() &&
             eqn.empty() && eqs.empty() && ne_all.empty() && con.empty();
    }
  };

 private:
  /// Reverse entry used to remove a rule without scanning the buckets.
  struct RuleEntry {
    bool is_class_rule = false;
    std::string key;  ///< Class name, or class + '\x1f' + property.
    rdbms::CompareOp op = rdbms::CompareOp::kEq;
    bool is_eqn = false;
    std::string constant;
    std::optional<double> constant_num;
  };

  static std::string BucketKey(const std::string& class_name,
                               const std::string& property);

  std::unordered_map<std::string, Bucket> buckets_;
  std::unordered_map<std::string, std::vector<int64_t>> class_rules_;
  std::unordered_map<int64_t, std::vector<RuleEntry>> entries_of_rule_;
  size_t num_entries_ = 0;
};

}  // namespace mdv::filter

#endif  // MDV_FILTER_PREDICATE_INDEX_H_
