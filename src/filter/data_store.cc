#include "filter/data_store.h"

#include "filter/tables.h"
#include "rdbms/table.h"
#include "rdf/document.h"

namespace mdv::filter {

namespace {
using rdbms::CompareOp;
using rdbms::Row;
using rdbms::ScanCondition;
using rdbms::Table;
using rdbms::Value;
}  // namespace

Status InsertAtoms(rdbms::Database* db, const rdf::Statements& atoms) {
  Table* data = db->GetTable(kFilterData);
  if (data == nullptr) {
    return Status::Internal("FilterData table missing");
  }
  for (const rdf::Statement& atom : atoms) {
    MDV_ASSIGN_OR_RETURN(
        rdbms::RowId ignored,
        data->Insert({Value(atom.subject), Value(atom.subject_class),
                      Value(atom.predicate), Value(atom.object.text())}));
    (void)ignored;
  }
  return Status::OK();
}

Status RemoveResourceAtoms(rdbms::Database* db,
                           const std::vector<std::string>& uri_references) {
  Table* data = db->GetTable(kFilterData);
  if (data == nullptr) {
    return Status::Internal("FilterData table missing");
  }
  for (const std::string& uri : uri_references) {
    data->DeleteWhere(
        {ScanCondition{FilterDataCols::kUri, CompareOp::kEq, Value(uri)}});
  }
  return Status::OK();
}

rdf::Statements AtomsOfResources(
    const rdbms::Database& db,
    const std::vector<std::string>& uri_references) {
  const Table* data = db.GetTable(kFilterData);
  rdf::Statements out;
  for (const std::string& uri : uri_references) {
    for (const Row& row : data->SelectRows(
             {ScanCondition{FilterDataCols::kUri, CompareOp::kEq,
                            Value(uri)}})) {
      rdf::Statement atom;
      atom.subject = row[FilterDataCols::kUri].as_string();
      atom.subject_class = row[FilterDataCols::kClass].as_string();
      atom.predicate = row[FilterDataCols::kProperty].as_string();
      const std::string& value = row[FilterDataCols::kValue].as_string();
      // FilterData stores values untyped; reconstruct the reference kind
      // for the synthetic subject atom, which is all the engine needs.
      atom.object = atom.predicate == rdf::kRdfSubjectProperty
                        ? rdf::PropertyValue::ResourceRef(value)
                        : rdf::PropertyValue::Literal(value);
      out.push_back(std::move(atom));
    }
  }
  return out;
}

namespace {

Status PurgeFromShard(rdbms::Database* db, int shard, int64_t rule_id,
                      const std::vector<std::string>& uris) {
  Table* mat = db->GetTable(ShardTableName(kMaterializedResults, shard));
  if (mat == nullptr) {
    return Status::Internal("MaterializedResults table missing");
  }
  for (const std::string& uri : uris) {
    mat->DeleteWhere(
        {ScanCondition{ResultCols::kUri, CompareOp::kEq, Value(uri)},
         ScanCondition{ResultCols::kRuleId, CompareOp::kEq,
                       Value(rule_id)}});
  }
  return Status::OK();
}

}  // namespace

Status PurgeMaterialized(
    rdbms::Database* db,
    const std::map<int64_t, std::vector<std::string>>& matches) {
  for (const auto& [rule_id, uris] : matches) {
    MDV_RETURN_IF_ERROR(PurgeFromShard(db, /*shard=*/0, rule_id, uris));
  }
  return Status::OK();
}

Status PurgeMaterialized(
    rdbms::Database* db, const RuleStore& store,
    const std::map<int64_t, std::vector<std::string>>& matches) {
  for (const auto& [rule_id, uris] : matches) {
    MDV_RETURN_IF_ERROR(
        PurgeFromShard(db, store.ShardOf(rule_id), rule_id, uris));
  }
  return Status::OK();
}

}  // namespace mdv::filter
