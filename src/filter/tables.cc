#include "filter/tables.h"

#include <vector>

#include "rdbms/schema.h"

namespace mdv::filter {

namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Database;
using rdbms::IndexKind;
using rdbms::Table;
using rdbms::TableSchema;

Status CreateTableWithIndexes(
    Database* db, TableSchema schema,
    const std::vector<std::pair<std::string, IndexKind>>& indexes,
    bool create_indexes) {
  MDV_ASSIGN_OR_RETURN(Table * table, db->CreateTable(std::move(schema)));
  if (create_indexes) {
    for (const auto& [column, kind] : indexes) {
      MDV_RETURN_IF_ERROR(table->CreateIndex(column, kind));
    }
  }
  return Status::OK();
}

TableSchema RulesTableSchema(const std::string& name) {
  return TableSchema(name, {ColumnDef{"rule_id", ColumnType::kInt64},
                            ColumnDef{"class", ColumnType::kString},
                            ColumnDef{"property", ColumnType::kString},
                            ColumnDef{"value", ColumnType::kString}});
}

}  // namespace

int TotalShardCount(int num_shards) {
  return num_shards > 1 ? num_shards + 1 : 1;
}

std::string ShardTableName(const std::string& base, int shard) {
  if (shard == 0) return base;
  return base + "@s" + std::to_string(shard);
}

Status CreateFilterTables(rdbms::Database* db, const TableOptions& options) {
  const bool ix = options.create_indexes;
  const int total_shards = TotalShardCount(options.num_shards);

  // Document atoms (Figure 4). The uri index supports purging a
  // resource's atoms and resolving property values during join
  // evaluation; the value index supports reverse lookups (value → uris)
  // when join rules probe the non-delta side.
  MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
      db,
      TableSchema(kFilterData, {ColumnDef{"uri_reference", ColumnType::kString},
                                ColumnDef{"class", ColumnType::kString},
                                ColumnDef{"property", ColumnType::kString},
                                ColumnDef{"value", ColumnType::kString}}),
      {{"uri_reference", IndexKind::kHash},
       {"value", IndexKind::kHash},
       {"property", IndexKind::kHash}},
      ix));

  // Decomposed rule base (Figure 7). The text index implements duplicate
  // elimination when merging dependency trees (§3.3.2).
  MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
      db,
      TableSchema(kAtomicRules, {ColumnDef{"rule_id", ColumnType::kInt64},
                                 ColumnDef{"kind", ColumnType::kString},
                                 ColumnDef{"type", ColumnType::kString},
                                 ColumnDef{"text", ColumnType::kString},
                                 ColumnDef{"group_id", ColumnType::kInt64},
                                 ColumnDef{"refcount", ColumnType::kInt64},
                                 ColumnDef{"shard", ColumnType::kInt64}}),
      {{"rule_id", IndexKind::kHash}, {"text", IndexKind::kHash}}, ix));

  MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
      db,
      TableSchema(kRuleDependencies,
                  {ColumnDef{"source", ColumnType::kInt64},
                   ColumnDef{"target", ColumnType::kInt64},
                   ColumnDef{"side", ColumnType::kInt64},
                   ColumnDef{"group_id", ColumnType::kInt64}}),
      {{"source", IndexKind::kHash}, {"target", IndexKind::kHash}}, ix));

  MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
      db,
      TableSchema(kRuleGroups,
                  {ColumnDef{"group_id", ColumnType::kInt64},
                   ColumnDef{"key", ColumnType::kString},
                   ColumnDef{"left_class", ColumnType::kString},
                   ColumnDef{"right_class", ColumnType::kString},
                   ColumnDef{"lhs_property", ColumnType::kString},
                   ColumnDef{"op", ColumnType::kString},
                   ColumnDef{"rhs_property", ColumnType::kString},
                   ColumnDef{"register_side", ColumnType::kInt64},
                   ColumnDef{"member_count", ColumnType::kInt64}}),
      {{"group_id", IndexKind::kHash}, {"key", IndexKind::kHash}}, ix));

  // Per-rule tables are materialized once per shard (shard 0 keeps the
  // legacy unsuffixed names). The rule-base tables above stay global:
  // the dependency graph and groups span shards.
  for (int shard = 0; shard < total_shards; ++shard) {
    // Per-iteration filter step output (Figure 9) and the materialized
    // results of atomic rules that join rules depend on (§3.4).
    MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
        db,
        TableSchema(ShardTableName(kResultObjects, shard),
                    {ColumnDef{"uri_reference", ColumnType::kString},
                     ColumnDef{"rule_id", ColumnType::kInt64}}),
        {{"rule_id", IndexKind::kHash}}, ix));

    MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
        db,
        TableSchema(ShardTableName(kMaterializedResults, shard),
                    {ColumnDef{"uri_reference", ColumnType::kString},
                     ColumnDef{"rule_id", ColumnType::kInt64}}),
        {{"uri_reference", IndexKind::kHash}, {"rule_id", IndexKind::kHash}},
        ix));

    // Triggering rules without a predicate: matched purely by class. The
    // rule_id index supports unregistration and initial evaluation of new
    // subscriptions.
    MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
        db,
        TableSchema(ShardTableName(kFilterRulesCLS, shard),
                    {ColumnDef{"rule_id", ColumnType::kInt64},
                     ColumnDef{"class", ColumnType::kString}}),
        {{"class", IndexKind::kHash}, {"rule_id", IndexKind::kHash}}, ix));

    // Triggering rules with an operator predicate, one table per operator
    // (Figure 8). Values are stored as strings and reconverted (§3.3.4).
    // String-equality rules index the value column so that a delta atom
    // finds its rules with one point lookup (this is what makes OID rules
    // independent of the rule base size, Figure 11); the ordered-operator
    // tables are probed by property.
    for (const std::string& name : AllOperatorTables()) {
      std::vector<std::pair<std::string, IndexKind>> indexes;
      if (name == kFilterRulesEQS) {
        indexes = {{"value", IndexKind::kHash}};
      } else {
        indexes = {{"property", IndexKind::kHash}};
      }
      indexes.emplace_back("rule_id", IndexKind::kHash);
      MDV_RETURN_IF_ERROR(CreateTableWithIndexes(
          db, RulesTableSchema(ShardTableName(name, shard)), indexes, ix));
    }
  }
  return Status::OK();
}

std::string FilterRulesTableFor(rdbms::CompareOp op, bool constant_is_number) {
  switch (op) {
    case rdbms::CompareOp::kEq:
      return constant_is_number ? kFilterRulesEQN : kFilterRulesEQS;
    case rdbms::CompareOp::kNe:
      return kFilterRulesNE;
    case rdbms::CompareOp::kLt:
      return kFilterRulesLT;
    case rdbms::CompareOp::kLe:
      return kFilterRulesLE;
    case rdbms::CompareOp::kGt:
      return kFilterRulesGT;
    case rdbms::CompareOp::kGe:
      return kFilterRulesGE;
    case rdbms::CompareOp::kContains:
      return kFilterRulesCON;
  }
  return kFilterRulesEQS;
}

const std::vector<std::string>& AllOperatorTables() {
  static const std::vector<std::string>& tables =
      *new std::vector<std::string>{kFilterRulesEQS, kFilterRulesEQN,
                                    kFilterRulesNE,  kFilterRulesLT,
                                    kFilterRulesLE,  kFilterRulesGT,
                                    kFilterRulesGE,  kFilterRulesCON};
  return tables;
}

const std::vector<OperatorTableInfo>& OperatorTableInfos() {
  using rdbms::CompareOp;
  static const std::vector<OperatorTableInfo>& infos =
      *new std::vector<OperatorTableInfo>{
          {kFilterRulesEQS, CompareOp::kEq, false},
          {kFilterRulesEQN, CompareOp::kEq, true},
          {kFilterRulesNE, CompareOp::kNe, false},
          {kFilterRulesLT, CompareOp::kLt, true},
          {kFilterRulesLE, CompareOp::kLe, true},
          {kFilterRulesGT, CompareOp::kGt, true},
          {kFilterRulesGE, CompareOp::kGe, true},
          {kFilterRulesCON, CompareOp::kContains, false}};
  return infos;
}

}  // namespace mdv::filter
