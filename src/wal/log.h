#ifndef MDV_WAL_LOG_H_
#define MDV_WAL_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "wal/record.h"

namespace mdv::wal {

/// When appended records reach the disk platter.
enum class FsyncPolicy {
  /// Never fsync (the OS flushes when it likes). Fastest; a machine
  /// crash can lose everything since the last checkpoint — only
  /// process crashes are covered.
  kNone,
  /// fsync after every append. The durability default.
  kAlways,
  /// fsync every `fsync_batch_records` appends (and on rotation,
  /// checkpoint and Sync()). Bounds loss to one batch.
  kBatch,
};

struct WalOptions {
  /// Directory holding MANIFEST, seg-<n> and snap-<epoch> files.
  /// Created (one level) if absent. Each journal owns its directory
  /// exclusively — two journals must not share one.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  int64_t fsync_batch_records = 32;
  /// Rotation threshold: an append that would push the active segment
  /// past this starts seg-<n+1> first.
  int64_t segment_bytes = 8 << 20;
  /// When > 0 the owner is asked (via appended_since_checkpoint()) to
  /// checkpoint after this many appends. The journal itself never
  /// snapshots — it cannot serialize the owner's state.
  int64_t checkpoint_every = 0;
  /// fsck mode: open, scan and report, but never truncate a torn tail,
  /// never prune, never allow Append/Checkpoint.
  bool read_only = false;
};

/// Identity and provenance of one journal, persisted in MANIFEST as a
/// single framed record (atomically replaced on checkpoint). `kind`,
/// `num_shards` and `schema_text` are fixed at creation and let an
/// offline reader (mdv_fsck) rebuild the owning component without the
/// original process's configuration.
struct Manifest {
  uint64_t epoch = 0;
  uint64_t first_segment = 1;
  std::string kind;        // "mdp" or "lmr".
  uint32_t num_shards = 0;  // MDP rule-store shards; 0 for LMRs.
  std::string schema_text;  // rdf::WriteSchemaText output.
};

/// Reads `dir`/MANIFEST without opening the journal (fsck's first
/// probe: is this a WAL directory at all, and of which kind?).
Result<Manifest> LoadManifest(const std::string& dir);

/// Everything recovered at Open: the snapshot for epoch N (empty when
/// the journal has never checkpointed) and the ordered log suffix to
/// replay on top of it. `truncated_tail_bytes`/`tail_error` describe a
/// torn final segment (already truncated unless read_only);
/// `segment_errors` lists mid-chain corruption, which only a read_only
/// open survives.
struct RecoveryInfo {
  bool fresh = false;  ///< No MANIFEST existed; nothing to replay.
  Manifest manifest;
  std::string snapshot;
  std::vector<WalRecord> records;
  uint64_t truncated_tail_bytes = 0;
  std::string tail_error;
  std::vector<std::string> segment_errors;
};

/// An append-only journal over one directory: checksummed record
/// segments with rotation, plus compacted snapshots that let the log
/// prefix be discarded.
///
/// Layout: MANIFEST names the current epoch E and the first live
/// segment F. Recovered state = load snap-E (if E > 0), then replay
/// seg-F, seg-F+1, ... in order. Checkpoint(S) writes snap-E+1 = S
/// (temp + fsync + rename), rotates to a fresh segment, commits a new
/// MANIFEST the same atomic way, then prunes everything older — so a
/// crash at any point leaves either the old or the new epoch fully
/// intact, never a mix.
///
/// Thread-safe: Append/Sync/Checkpoint serialize on an internal
/// kWalJournal mutex (a leaf — nothing is called out while held).
class Journal {
 public:
  /// Opens (or creates) the journal in `options.dir`. `meta` supplies
  /// kind/num_shards/schema_text when the directory is fresh; on an
  /// existing directory the persisted manifest wins and `meta.kind`
  /// must match (guards against pointing an MDP at an LMR's log).
  static Result<std::unique_ptr<Journal>> Open(const WalOptions& options,
                                               const Manifest& meta);

  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// What Open() found. Stable after construction; replay it before
  /// the first Append.
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Appends one record, rotating and fsyncing per policy. The record
  /// is durable (per policy) when this returns OK.
  Status Append(uint8_t type, std::string payload) EXCLUDES(mu_);

  /// Forces an fsync of the active segment (no-op under kNone only if
  /// nothing was written since the last sync).
  Status Sync() EXCLUDES(mu_);

  /// Installs `snapshot` as the new epoch's base image and discards
  /// the log prefix it covers. The caller must pass a serialization of
  /// its CURRENT state — every record appended so far must be folded
  /// in, or it is lost with the pruned segments.
  Status Checkpoint(const std::string& snapshot) EXCLUDES(mu_);

  /// Appends since Open or the last successful Checkpoint — the
  /// owner's trigger for options.checkpoint_every.
  int64_t appended_since_checkpoint() const EXCLUDES(mu_);

  uint64_t epoch() const EXCLUDES(mu_);

  const WalOptions& options() const { return options_; }

 private:
  explicit Journal(WalOptions options) : options_(std::move(options)) {}

  Status OpenActiveSegment(uint64_t segment) REQUIRES(mu_);
  Status WriteAndMaybeSync(const std::string& bytes) REQUIRES(mu_);
  Status CommitManifest(const Manifest& manifest) REQUIRES(mu_);
  void PruneBelow(uint64_t first_segment, uint64_t epoch) REQUIRES(mu_);

  const WalOptions options_;
  RecoveryInfo recovery_;

  mutable Mutex mu_{LockRank::kWalJournal, "wal.journal"};
  Manifest manifest_ GUARDED_BY(mu_);
  int fd_ GUARDED_BY(mu_) = -1;
  uint64_t active_segment_ GUARDED_BY(mu_) = 0;
  int64_t active_bytes_ GUARDED_BY(mu_) = 0;
  int64_t unsynced_records_ GUARDED_BY(mu_) = 0;
  int64_t appended_since_checkpoint_ GUARDED_BY(mu_) = 0;
};

/// Path helpers shared with tests and mdv_fsck.
std::string SegmentFileName(uint64_t segment);
std::string SnapshotFileName(uint64_t epoch);

}  // namespace mdv::wal

#endif  // MDV_WAL_LOG_H_
