#ifndef MDV_WAL_RECORD_H_
#define MDV_WAL_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mdv::wal {

/// WAL record framing. Deliberately the same shape as the net wire
/// frame (src/net/wire.cc) so both sit on one checksum and one set of
/// torn-input rules:
///
///   magic     u32 LE  = kWalMagic ("MDWL")
///   version   u8      = kWalVersion
///   type      u8      record type (kind-specific, see log.h users)
///   reserved  u16 LE  = 0
///   length    u32 LE  payload byte count
///   checksum  u64 LE  FNV-1a 64 of the payload bytes
///   payload   length bytes
///
/// The magic differs from the wire magic on purpose: a log segment
/// accidentally fed to the frame decoder (or vice versa) fails on the
/// first four bytes instead of half-parsing.
inline constexpr uint32_t kWalMagic = 0x4C57444Du;  // "MDWL" little-endian.
inline constexpr uint8_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 20;
/// Same ceiling as the wire codec: a length field beyond this is
/// treated as corruption, not as a request for a 4 GiB allocation.
inline constexpr uint32_t kWalMaxPayloadBytes = 64u << 20;

/// One decoded record.
struct WalRecord {
  uint8_t type = 0;
  std::string payload;
};

/// Frames `payload` as one record ready to append to a segment.
std::string EncodeWalRecord(uint8_t type, std::string_view payload);

/// Result of scanning a segment (or any byte buffer of concatenated
/// records). `records` holds every record up to the first invalid
/// byte; `valid_bytes` is the offset just past the last good record —
/// the truncation point for torn-tail repair. `torn` is set when the
/// buffer did not end exactly on a record boundary, and `tail_error`
/// says why the scan stopped ("short header", "bad checksum", ...).
struct WalScan {
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;
  bool torn = false;
  std::string tail_error;
};

/// Scans `buffer` front to back. Never fails: corruption anywhere
/// simply ends the valid prefix. A record after the corrupt point is
/// unreachable by design — redo logs have no resynchronization,
/// because replaying records whose predecessors are lost would apply
/// effects out of order.
WalScan ScanWalBuffer(std::string_view buffer);

// --- Little-endian payload helpers -----------------------------------
// Record payloads are built from the same fixed-width primitives as
// wire payloads: integers little-endian, strings length-prefixed.

void PutU8(std::string& out, uint8_t value);
void PutU16(std::string& out, uint16_t value);
void PutU32(std::string& out, uint32_t value);
void PutU64(std::string& out, uint64_t value);
void PutI64(std::string& out, int64_t value);
void PutString(std::string& out, std::string_view value);

/// Bounds-checked sequential reader over one payload. Every Read*
/// returns nullopt once any prior read failed (sticky), so callers can
/// chain reads and check once.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  std::optional<uint8_t> ReadU8();
  std::optional<uint16_t> ReadU16();
  std::optional<uint32_t> ReadU32();
  std::optional<uint64_t> ReadU64();
  std::optional<int64_t> ReadI64();
  std::optional<std::string> ReadString();

  /// True when every byte was consumed and no read failed — payload
  /// decoders should require this so trailing garbage is an error.
  bool Done() const { return !failed_ && offset_ == data_.size(); }
  bool failed() const { return failed_; }
  size_t remaining() const { return failed_ ? 0 : data_.size() - offset_; }

 private:
  bool Take(size_t n) {
    if (failed_ || data_.size() - offset_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace mdv::wal

#endif  // MDV_WAL_RECORD_H_
