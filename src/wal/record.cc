#include "wal/record.h"

#include <cstring>

#include "common/checksum.h"

namespace mdv::wal {

void PutU8(std::string& out, uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void PutU16(std::string& out, uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutI64(std::string& out, int64_t value) {
  PutU64(out, static_cast<uint64_t>(value));
}

void PutString(std::string& out, std::string_view value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.append(value);
}

std::optional<uint8_t> PayloadReader::ReadU8() {
  if (!Take(1)) return std::nullopt;
  return static_cast<uint8_t>(data_[offset_++]);
}

std::optional<uint16_t> PayloadReader::ReadU16() {
  if (!Take(2)) return std::nullopt;
  uint16_t value = 0;
  for (int shift = 0; shift < 16; shift += 8) {
    value |= static_cast<uint16_t>(static_cast<uint8_t>(data_[offset_++]))
             << shift;
  }
  return value;
}

std::optional<uint32_t> PayloadReader::ReadU32() {
  if (!Take(4)) return std::nullopt;
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_++]))
             << shift;
  }
  return value;
}

std::optional<uint64_t> PayloadReader::ReadU64() {
  if (!Take(8)) return std::nullopt;
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[offset_++]))
             << shift;
  }
  return value;
}

std::optional<int64_t> PayloadReader::ReadI64() {
  std::optional<uint64_t> raw = ReadU64();
  if (!raw) return std::nullopt;
  return static_cast<int64_t>(*raw);
}

std::optional<std::string> PayloadReader::ReadString() {
  std::optional<uint32_t> length = ReadU32();
  if (!length || !Take(*length)) return std::nullopt;
  std::string value(data_.substr(offset_, *length));
  offset_ += *length;
  return value;
}

std::string EncodeWalRecord(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kWalHeaderBytes + payload.size());
  PutU32(out, kWalMagic);
  PutU8(out, kWalVersion);
  PutU8(out, type);
  PutU16(out, 0);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, Fnv1a(payload));
  out.append(payload);
  return out;
}

namespace {

uint32_t GetU32(std::string_view data, size_t offset) {
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(data[offset++]))
             << shift;
  }
  return value;
}

uint64_t GetU64(std::string_view data, size_t offset) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data[offset++]))
             << shift;
  }
  return value;
}

}  // namespace

WalScan ScanWalBuffer(std::string_view buffer) {
  WalScan scan;
  size_t offset = 0;
  while (offset < buffer.size()) {
    const std::string_view rest = buffer.substr(offset);
    if (rest.size() < kWalHeaderBytes) {
      scan.torn = true;
      scan.tail_error = "short header";
      break;
    }
    if (GetU32(rest, 0) != kWalMagic) {
      scan.torn = true;
      scan.tail_error = "bad magic";
      break;
    }
    if (static_cast<uint8_t>(rest[4]) != kWalVersion) {
      scan.torn = true;
      scan.tail_error = "unsupported version";
      break;
    }
    const uint8_t type = static_cast<uint8_t>(rest[5]);
    if (rest[6] != 0 || rest[7] != 0) {
      scan.torn = true;
      scan.tail_error = "nonzero reserved bytes";
      break;
    }
    const uint32_t length = GetU32(rest, 8);
    if (length > kWalMaxPayloadBytes) {
      scan.torn = true;
      scan.tail_error = "payload length over limit";
      break;
    }
    if (rest.size() - kWalHeaderBytes < length) {
      scan.torn = true;
      scan.tail_error = "short payload";
      break;
    }
    const uint64_t want = GetU64(rest, 12);
    const std::string_view payload = rest.substr(kWalHeaderBytes, length);
    if (Fnv1a(payload) != want) {
      scan.torn = true;
      scan.tail_error = "bad checksum";
      break;
    }
    scan.records.push_back(WalRecord{type, std::string(payload)});
    offset += kWalHeaderBytes + length;
    scan.valid_bytes = offset;
  }
  return scan;
}

}  // namespace mdv::wal
