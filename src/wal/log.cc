#include "wal/log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/file_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mdv::wal {

namespace {

namespace fs = std::filesystem;

/// The MANIFEST file holds exactly one record of this type; segments
/// never contain it (owners number their record types from 1 up).
constexpr uint8_t kManifestRecord = 0;

/// Process-wide WAL metrics, aggregated across journals. Resolved once.
struct WalMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& appends = r.GetCounter("mdv.wal.appends_total");
  obs::Counter& fsyncs = r.GetCounter("mdv.wal.fsyncs_total");
  obs::Counter& bytes = r.GetCounter("mdv.wal.bytes_total");
  obs::Counter& replayed = r.GetCounter("mdv.wal.replayed_records_total");
  obs::Counter& truncated = r.GetCounter("mdv.wal.truncated_tails_total");
  obs::Counter& checkpoints = r.GetCounter("mdv.wal.checkpoints_total");

  static WalMetrics& Get() {
    static WalMetrics& metrics = *new WalMetrics();
    return metrics;
  }
};

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) return Errno("fsync " + what);
  WalMetrics::Get().fsyncs.Increment();
  return Status::OK();
}

/// fsyncs the directory so a just-renamed or just-created entry
/// survives a machine crash (the entry lives in the directory inode).
Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open dir " + dir);
  Status status = FsyncFd(fd, dir);
  ::close(fd);
  return status;
}

std::string EncodeManifest(const Manifest& manifest) {
  std::string payload;
  PutU64(payload, manifest.epoch);
  PutU64(payload, manifest.first_segment);
  PutString(payload, manifest.kind);
  PutU32(payload, manifest.num_shards);
  PutString(payload, manifest.schema_text);
  return EncodeWalRecord(kManifestRecord, payload);
}

Result<Manifest> DecodeManifest(const std::string& bytes) {
  WalScan scan = ScanWalBuffer(bytes);
  if (scan.records.size() != 1 || scan.torn ||
      scan.records[0].type != kManifestRecord) {
    return Status::ParseError("manifest is not a single intact record");
  }
  PayloadReader reader(scan.records[0].payload);
  Manifest manifest;
  auto epoch = reader.ReadU64();
  auto first_segment = reader.ReadU64();
  auto kind = reader.ReadString();
  auto num_shards = reader.ReadU32();
  auto schema_text = reader.ReadString();
  if (!schema_text || !reader.Done()) {
    return Status::ParseError("manifest payload malformed");
  }
  manifest.epoch = *epoch;
  manifest.first_segment = *first_segment;
  manifest.kind = *kind;
  manifest.num_shards = *num_shards;
  manifest.schema_text = *schema_text;
  return manifest;
}

}  // namespace

std::string SegmentFileName(uint64_t segment) {
  return "seg-" + std::to_string(segment);
}

std::string SnapshotFileName(uint64_t epoch) {
  return "snap-" + std::to_string(epoch);
}

Result<Manifest> LoadManifest(const std::string& dir) {
  MDV_ASSIGN_OR_RETURN(std::string bytes,
                       ReadFileToString(dir + "/MANIFEST"));
  return DecodeManifest(bytes);
}

Result<std::unique_ptr<Journal>> Journal::Open(const WalOptions& options,
                                               const Manifest& meta) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions.dir is empty");
  }
  WalMetrics& metrics = WalMetrics::Get();
  std::unique_ptr<Journal> journal(new Journal(options));
  const std::string& dir = options.dir;
  std::error_code ec;
  if (!options.read_only) {
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("create " + dir + ": " + ec.message());
    }
  } else if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("no WAL directory: " + dir);
  }

  MutexLock lock(journal->mu_);
  RecoveryInfo& rec = journal->recovery_;
  Result<Manifest> loaded = LoadManifest(dir);
  if (loaded.ok()) {
    journal->manifest_ = *std::move(loaded);
    if (!meta.kind.empty() && journal->manifest_.kind != meta.kind) {
      return Status::InvalidArgument(
          "WAL at " + dir + " belongs to a '" + journal->manifest_.kind +
          "', not a '" + meta.kind + "'");
    }
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    rec.fresh = true;
    journal->manifest_ = meta;
    journal->manifest_.epoch = 0;
    journal->manifest_.first_segment = 1;
    if (!options.read_only) {
      MDV_RETURN_IF_ERROR(journal->CommitManifest(journal->manifest_));
    }
  } else {
    return loaded.status();
  }
  rec.manifest = journal->manifest_;

  // The epoch's base image. Its absence on a checkpointed journal is
  // unrecoverable corruption (the pruned log prefix is gone with it).
  if (journal->manifest_.epoch > 0) {
    Result<std::string> snapshot =
        ReadFileToString(dir + "/" + SnapshotFileName(journal->manifest_.epoch));
    if (snapshot.ok()) {
      rec.snapshot = *std::move(snapshot);
    } else if (options.read_only) {
      rec.segment_errors.push_back(
          SnapshotFileName(journal->manifest_.epoch) + ": " +
          snapshot.status().ToString());
    } else {
      return Status::Internal("missing snapshot for epoch " +
                              std::to_string(journal->manifest_.epoch));
    }
  }

  // Replay suffix: seg-F, seg-F+1, ... while files exist. Corruption in
  // a segment that is not the last is fatal in write mode — records
  // after the hole would replay out of order.
  uint64_t segment = journal->manifest_.first_segment;
  uint64_t last_existing = segment;
  bool collect = rec.segment_errors.empty();
  while (true) {
    const std::string path = dir + "/" + SegmentFileName(segment);
    Result<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) break;
    last_existing = segment;
    WalScan scan = ScanWalBuffer(*bytes);
    const bool last =
        !fs::exists(dir + "/" + SegmentFileName(segment + 1), ec);
    if (scan.torn && !last) {
      const std::string error =
          SegmentFileName(segment) + ": mid-chain corruption (" +
          scan.tail_error + " at byte " + std::to_string(scan.valid_bytes) +
          ")";
      if (!options.read_only) return Status::Internal(error);
      rec.segment_errors.push_back(error);
      collect = false;
    } else if (scan.torn) {
      rec.truncated_tail_bytes = bytes->size() - scan.valid_bytes;
      rec.tail_error = scan.tail_error;
      metrics.truncated.Increment();
      if (!options.read_only &&
          ::truncate(path.c_str(),
                     static_cast<off_t>(scan.valid_bytes)) != 0) {
        return Errno("truncate " + path);
      }
    }
    if (collect) {
      for (WalRecord& record : scan.records) {
        rec.records.push_back(std::move(record));
      }
    }
    if (last) break;
    ++segment;
  }
  metrics.replayed.Add(static_cast<int64_t>(rec.records.size()));
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kWalRecover,
      static_cast<int64_t>(rec.records.size()),
      static_cast<int64_t>(rec.truncated_tail_bytes), 0, dir);

  if (!options.read_only) {
    journal->PruneBelow(journal->manifest_.first_segment,
                        journal->manifest_.epoch);
    MDV_RETURN_IF_ERROR(journal->OpenActiveSegment(last_existing));
  }
  return journal;
}

Journal::~Journal() {
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    if (unsynced_records_ > 0 && options_.fsync != FsyncPolicy::kNone) {
      ::fsync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Status Journal::OpenActiveSegment(uint64_t segment) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = options_.dir + "/" + SegmentFileName(segment);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open " + path);
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    Status status = Errno("lseek " + path);
    ::close(fd);
    return status;
  }
  fd_ = fd;
  active_segment_ = segment;
  active_bytes_ = size;
  unsynced_records_ = 0;
  return Status::OK();
}

Status Journal::WriteAndMaybeSync(const std::string& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("append to " + SegmentFileName(active_segment_));
    }
    written += static_cast<size_t>(n);
  }
  active_bytes_ += static_cast<int64_t>(bytes.size());
  ++unsynced_records_;
  const bool sync =
      options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kBatch &&
       unsynced_records_ >= options_.fsync_batch_records);
  if (sync) {
    MDV_RETURN_IF_ERROR(FsyncFd(fd_, SegmentFileName(active_segment_)));
    unsynced_records_ = 0;
  }
  return Status::OK();
}

Status Journal::CommitManifest(const Manifest& manifest) {
  MDV_RETURN_IF_ERROR(
      WriteFileAtomic(options_.dir + "/MANIFEST", EncodeManifest(manifest)));
  WalMetrics::Get().fsyncs.Add(2);  // Temp file + directory entry.
  manifest_ = manifest;
  return Status::OK();
}

void Journal::PruneBelow(uint64_t first_segment, uint64_t epoch) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    bool doomed = false;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      doomed = true;  // Leftover from a crashed atomic write.
    } else if (name.rfind("seg-", 0) == 0) {
      doomed = std::stoull(name.substr(4)) < first_segment;
    } else if (name.rfind("snap-", 0) == 0) {
      doomed = std::stoull(name.substr(5)) != epoch;
    }
    if (doomed) fs::remove(entry.path(), ec);
  }
}

Status Journal::Append(uint8_t type, std::string payload) {
  if (options_.read_only) {
    return Status::Unsupported("journal opened read-only");
  }
  const std::string bytes = EncodeWalRecord(type, payload);
  uint64_t segment = 0;
  {
    MutexLock lock(mu_);
    if (fd_ < 0) return Status::Internal("journal has no active segment");
    if (active_bytes_ > 0 &&
        active_bytes_ + static_cast<int64_t>(bytes.size()) >
            options_.segment_bytes) {
      if (unsynced_records_ > 0 && options_.fsync != FsyncPolicy::kNone) {
        MDV_RETURN_IF_ERROR(FsyncFd(fd_, SegmentFileName(active_segment_)));
        unsynced_records_ = 0;
      }
      MDV_RETURN_IF_ERROR(OpenActiveSegment(active_segment_ + 1));
      MDV_RETURN_IF_ERROR(FsyncDir(options_.dir));
    }
    MDV_RETURN_IF_ERROR(WriteAndMaybeSync(bytes));
    ++appended_since_checkpoint_;
    segment = active_segment_;
  }
  WalMetrics& metrics = WalMetrics::Get();
  metrics.appends.Increment();
  metrics.bytes.Add(static_cast<int64_t>(bytes.size()));
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kWalAppend, type,
      static_cast<int64_t>(payload.size()), static_cast<int64_t>(segment));
  return Status::OK();
}

Status Journal::Sync() {
  if (options_.read_only) {
    return Status::Unsupported("journal opened read-only");
  }
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::Internal("journal has no active segment");
  if (unsynced_records_ == 0) return Status::OK();
  MDV_RETURN_IF_ERROR(FsyncFd(fd_, SegmentFileName(active_segment_)));
  unsynced_records_ = 0;
  return Status::OK();
}

Status Journal::Checkpoint(const std::string& snapshot) {
  if (options_.read_only) {
    return Status::Unsupported("journal opened read-only");
  }
  uint64_t new_epoch = 0;
  int64_t pruned = 0;
  {
    MutexLock lock(mu_);
    if (fd_ < 0) return Status::Internal("journal has no active segment");
    new_epoch = manifest_.epoch + 1;
    MDV_RETURN_IF_ERROR(WriteFileAtomic(
        options_.dir + "/" + SnapshotFileName(new_epoch), snapshot));
    WalMetrics::Get().fsyncs.Add(2);  // Temp file + directory entry.
    // The snapshot subsumes every record up to here; start a fresh
    // segment so the manifest can point past the old ones.
    if (unsynced_records_ > 0 && options_.fsync != FsyncPolicy::kNone) {
      MDV_RETURN_IF_ERROR(FsyncFd(fd_, SegmentFileName(active_segment_)));
      unsynced_records_ = 0;
    }
    const uint64_t old_first = manifest_.first_segment;
    MDV_RETURN_IF_ERROR(OpenActiveSegment(active_segment_ + 1));
    Manifest next = manifest_;
    next.epoch = new_epoch;
    next.first_segment = active_segment_;
    MDV_RETURN_IF_ERROR(CommitManifest(next));
    pruned = static_cast<int64_t>(active_segment_ - old_first);
    PruneBelow(manifest_.first_segment, manifest_.epoch);
    appended_since_checkpoint_ = 0;
  }
  WalMetrics::Get().checkpoints.Increment();
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kWalCheckpoint, static_cast<int64_t>(new_epoch),
      static_cast<int64_t>(snapshot.size()), pruned);
  return Status::OK();
}

int64_t Journal::appended_since_checkpoint() const {
  MutexLock lock(mu_);
  return appended_since_checkpoint_;
}

uint64_t Journal::epoch() const {
  MutexLock lock(mu_);
  return manifest_.epoch;
}

}  // namespace mdv::wal
