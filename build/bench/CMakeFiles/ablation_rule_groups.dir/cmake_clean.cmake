file(REMOVE_RECURSE
  "CMakeFiles/ablation_rule_groups.dir/ablation_rule_groups.cc.o"
  "CMakeFiles/ablation_rule_groups.dir/ablation_rule_groups.cc.o.d"
  "ablation_rule_groups"
  "ablation_rule_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rule_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
