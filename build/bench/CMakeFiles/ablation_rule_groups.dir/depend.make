# Empty dependencies file for ablation_rule_groups.
# This may be replaced when dependencies are built.
