# Empty dependencies file for fig15_comp_pct.
# This may be replaced when dependencies are built.
