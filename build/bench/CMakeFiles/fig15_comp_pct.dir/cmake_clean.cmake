file(REMOVE_RECURSE
  "CMakeFiles/fig15_comp_pct.dir/fig15_comp_pct.cc.o"
  "CMakeFiles/fig15_comp_pct.dir/fig15_comp_pct.cc.o.d"
  "fig15_comp_pct"
  "fig15_comp_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_comp_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
