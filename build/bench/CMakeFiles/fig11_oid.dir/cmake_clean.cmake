file(REMOVE_RECURSE
  "CMakeFiles/fig11_oid.dir/fig11_oid.cc.o"
  "CMakeFiles/fig11_oid.dir/fig11_oid.cc.o.d"
  "fig11_oid"
  "fig11_oid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_oid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
