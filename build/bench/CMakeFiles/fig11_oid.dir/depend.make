# Empty dependencies file for fig11_oid.
# This may be replaced when dependencies are built.
