# Empty dependencies file for fig14_join.
# This may be replaced when dependencies are built.
