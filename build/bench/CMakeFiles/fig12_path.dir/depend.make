# Empty dependencies file for fig12_path.
# This may be replaced when dependencies are built.
