file(REMOVE_RECURSE
  "CMakeFiles/fig12_path.dir/fig12_path.cc.o"
  "CMakeFiles/fig12_path.dir/fig12_path.cc.o.d"
  "fig12_path"
  "fig12_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
