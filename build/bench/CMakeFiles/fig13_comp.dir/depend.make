# Empty dependencies file for fig13_comp.
# This may be replaced when dependencies are built.
