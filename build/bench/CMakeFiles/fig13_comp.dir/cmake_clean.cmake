file(REMOVE_RECURSE
  "CMakeFiles/fig13_comp.dir/fig13_comp.cc.o"
  "CMakeFiles/fig13_comp.dir/fig13_comp.cc.o.d"
  "fig13_comp"
  "fig13_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
