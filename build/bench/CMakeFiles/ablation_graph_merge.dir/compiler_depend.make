# Empty compiler generated dependencies file for ablation_graph_merge.
# This may be replaced when dependencies are built.
