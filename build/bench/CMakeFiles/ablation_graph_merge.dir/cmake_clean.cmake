file(REMOVE_RECURSE
  "CMakeFiles/ablation_graph_merge.dir/ablation_graph_merge.cc.o"
  "CMakeFiles/ablation_graph_merge.dir/ablation_graph_merge.cc.o.d"
  "ablation_graph_merge"
  "ablation_graph_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_graph_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
