# Empty compiler generated dependencies file for micro_rules.
# This may be replaced when dependencies are built.
