file(REMOVE_RECURSE
  "CMakeFiles/micro_rules.dir/micro_rules.cc.o"
  "CMakeFiles/micro_rules.dir/micro_rules.cc.o.d"
  "micro_rules"
  "micro_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
