file(REMOVE_RECURSE
  "CMakeFiles/micro_rdbms.dir/micro_rdbms.cc.o"
  "CMakeFiles/micro_rdbms.dir/micro_rdbms.cc.o.d"
  "micro_rdbms"
  "micro_rdbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rdbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
