# Empty dependencies file for micro_rdbms.
# This may be replaced when dependencies are built.
