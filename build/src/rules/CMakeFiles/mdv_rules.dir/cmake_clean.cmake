file(REMOVE_RECURSE
  "CMakeFiles/mdv_rules.dir/analyzer.cc.o"
  "CMakeFiles/mdv_rules.dir/analyzer.cc.o.d"
  "CMakeFiles/mdv_rules.dir/ast.cc.o"
  "CMakeFiles/mdv_rules.dir/ast.cc.o.d"
  "CMakeFiles/mdv_rules.dir/atomic_rule.cc.o"
  "CMakeFiles/mdv_rules.dir/atomic_rule.cc.o.d"
  "CMakeFiles/mdv_rules.dir/compiler.cc.o"
  "CMakeFiles/mdv_rules.dir/compiler.cc.o.d"
  "CMakeFiles/mdv_rules.dir/decomposer.cc.o"
  "CMakeFiles/mdv_rules.dir/decomposer.cc.o.d"
  "CMakeFiles/mdv_rules.dir/evaluator.cc.o"
  "CMakeFiles/mdv_rules.dir/evaluator.cc.o.d"
  "CMakeFiles/mdv_rules.dir/lexer.cc.o"
  "CMakeFiles/mdv_rules.dir/lexer.cc.o.d"
  "CMakeFiles/mdv_rules.dir/normalizer.cc.o"
  "CMakeFiles/mdv_rules.dir/normalizer.cc.o.d"
  "CMakeFiles/mdv_rules.dir/parser.cc.o"
  "CMakeFiles/mdv_rules.dir/parser.cc.o.d"
  "libmdv_rules.a"
  "libmdv_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
