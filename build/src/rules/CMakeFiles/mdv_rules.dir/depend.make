# Empty dependencies file for mdv_rules.
# This may be replaced when dependencies are built.
