
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/analyzer.cc" "src/rules/CMakeFiles/mdv_rules.dir/analyzer.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/analyzer.cc.o.d"
  "/root/repo/src/rules/ast.cc" "src/rules/CMakeFiles/mdv_rules.dir/ast.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/ast.cc.o.d"
  "/root/repo/src/rules/atomic_rule.cc" "src/rules/CMakeFiles/mdv_rules.dir/atomic_rule.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/atomic_rule.cc.o.d"
  "/root/repo/src/rules/compiler.cc" "src/rules/CMakeFiles/mdv_rules.dir/compiler.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/compiler.cc.o.d"
  "/root/repo/src/rules/decomposer.cc" "src/rules/CMakeFiles/mdv_rules.dir/decomposer.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/decomposer.cc.o.d"
  "/root/repo/src/rules/evaluator.cc" "src/rules/CMakeFiles/mdv_rules.dir/evaluator.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/evaluator.cc.o.d"
  "/root/repo/src/rules/lexer.cc" "src/rules/CMakeFiles/mdv_rules.dir/lexer.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/lexer.cc.o.d"
  "/root/repo/src/rules/normalizer.cc" "src/rules/CMakeFiles/mdv_rules.dir/normalizer.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/normalizer.cc.o.d"
  "/root/repo/src/rules/parser.cc" "src/rules/CMakeFiles/mdv_rules.dir/parser.cc.o" "gcc" "src/rules/CMakeFiles/mdv_rules.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdbms/CMakeFiles/mdv_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mdv_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
