file(REMOVE_RECURSE
  "libmdv_rules.a"
)
