# Empty compiler generated dependencies file for mdv_rdf.
# This may be replaced when dependencies are built.
