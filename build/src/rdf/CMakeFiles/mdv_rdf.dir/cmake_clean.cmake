file(REMOVE_RECURSE
  "CMakeFiles/mdv_rdf.dir/diff.cc.o"
  "CMakeFiles/mdv_rdf.dir/diff.cc.o.d"
  "CMakeFiles/mdv_rdf.dir/document.cc.o"
  "CMakeFiles/mdv_rdf.dir/document.cc.o.d"
  "CMakeFiles/mdv_rdf.dir/parser.cc.o"
  "CMakeFiles/mdv_rdf.dir/parser.cc.o.d"
  "CMakeFiles/mdv_rdf.dir/schema.cc.o"
  "CMakeFiles/mdv_rdf.dir/schema.cc.o.d"
  "CMakeFiles/mdv_rdf.dir/term.cc.o"
  "CMakeFiles/mdv_rdf.dir/term.cc.o.d"
  "CMakeFiles/mdv_rdf.dir/writer.cc.o"
  "CMakeFiles/mdv_rdf.dir/writer.cc.o.d"
  "CMakeFiles/mdv_rdf.dir/xml_import.cc.o"
  "CMakeFiles/mdv_rdf.dir/xml_import.cc.o.d"
  "libmdv_rdf.a"
  "libmdv_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
