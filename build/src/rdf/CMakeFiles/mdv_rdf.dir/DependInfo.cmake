
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/diff.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/diff.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/diff.cc.o.d"
  "/root/repo/src/rdf/document.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/document.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/document.cc.o.d"
  "/root/repo/src/rdf/parser.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/parser.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/parser.cc.o.d"
  "/root/repo/src/rdf/schema.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/schema.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/schema.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/writer.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/writer.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/writer.cc.o.d"
  "/root/repo/src/rdf/xml_import.cc" "src/rdf/CMakeFiles/mdv_rdf.dir/xml_import.cc.o" "gcc" "src/rdf/CMakeFiles/mdv_rdf.dir/xml_import.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
