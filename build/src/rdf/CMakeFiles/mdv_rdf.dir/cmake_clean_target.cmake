file(REMOVE_RECURSE
  "libmdv_rdf.a"
)
