file(REMOVE_RECURSE
  "CMakeFiles/mdv_bench_support.dir/workload.cc.o"
  "CMakeFiles/mdv_bench_support.dir/workload.cc.o.d"
  "libmdv_bench_support.a"
  "libmdv_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
