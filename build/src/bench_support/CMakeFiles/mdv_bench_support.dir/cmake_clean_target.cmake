file(REMOVE_RECURSE
  "libmdv_bench_support.a"
)
