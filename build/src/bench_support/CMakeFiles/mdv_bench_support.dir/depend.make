# Empty dependencies file for mdv_bench_support.
# This may be replaced when dependencies are built.
