file(REMOVE_RECURSE
  "CMakeFiles/mdv_pubsub.dir/publisher.cc.o"
  "CMakeFiles/mdv_pubsub.dir/publisher.cc.o.d"
  "CMakeFiles/mdv_pubsub.dir/subscription.cc.o"
  "CMakeFiles/mdv_pubsub.dir/subscription.cc.o.d"
  "libmdv_pubsub.a"
  "libmdv_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
