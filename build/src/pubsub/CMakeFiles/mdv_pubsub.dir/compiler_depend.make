# Empty compiler generated dependencies file for mdv_pubsub.
# This may be replaced when dependencies are built.
