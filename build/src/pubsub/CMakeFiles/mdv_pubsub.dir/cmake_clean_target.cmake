file(REMOVE_RECURSE
  "libmdv_pubsub.a"
)
