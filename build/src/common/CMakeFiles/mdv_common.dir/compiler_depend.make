# Empty compiler generated dependencies file for mdv_common.
# This may be replaced when dependencies are built.
