file(REMOVE_RECURSE
  "libmdv_common.a"
)
