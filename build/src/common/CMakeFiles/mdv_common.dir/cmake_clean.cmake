file(REMOVE_RECURSE
  "CMakeFiles/mdv_common.dir/logging.cc.o"
  "CMakeFiles/mdv_common.dir/logging.cc.o.d"
  "CMakeFiles/mdv_common.dir/status.cc.o"
  "CMakeFiles/mdv_common.dir/status.cc.o.d"
  "CMakeFiles/mdv_common.dir/string_util.cc.o"
  "CMakeFiles/mdv_common.dir/string_util.cc.o.d"
  "libmdv_common.a"
  "libmdv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
