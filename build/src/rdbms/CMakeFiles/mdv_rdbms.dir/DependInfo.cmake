
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdbms/database.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/database.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/database.cc.o.d"
  "/root/repo/src/rdbms/index.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/index.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/index.cc.o.d"
  "/root/repo/src/rdbms/persistence.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/persistence.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/persistence.cc.o.d"
  "/root/repo/src/rdbms/predicate.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/predicate.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/predicate.cc.o.d"
  "/root/repo/src/rdbms/query.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/query.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/query.cc.o.d"
  "/root/repo/src/rdbms/schema.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/schema.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/schema.cc.o.d"
  "/root/repo/src/rdbms/sql.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/sql.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/sql.cc.o.d"
  "/root/repo/src/rdbms/table.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/table.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/table.cc.o.d"
  "/root/repo/src/rdbms/transaction.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/transaction.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/transaction.cc.o.d"
  "/root/repo/src/rdbms/value.cc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/value.cc.o" "gcc" "src/rdbms/CMakeFiles/mdv_rdbms.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
