file(REMOVE_RECURSE
  "CMakeFiles/mdv_rdbms.dir/database.cc.o"
  "CMakeFiles/mdv_rdbms.dir/database.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/index.cc.o"
  "CMakeFiles/mdv_rdbms.dir/index.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/persistence.cc.o"
  "CMakeFiles/mdv_rdbms.dir/persistence.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/predicate.cc.o"
  "CMakeFiles/mdv_rdbms.dir/predicate.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/query.cc.o"
  "CMakeFiles/mdv_rdbms.dir/query.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/schema.cc.o"
  "CMakeFiles/mdv_rdbms.dir/schema.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/sql.cc.o"
  "CMakeFiles/mdv_rdbms.dir/sql.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/table.cc.o"
  "CMakeFiles/mdv_rdbms.dir/table.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/transaction.cc.o"
  "CMakeFiles/mdv_rdbms.dir/transaction.cc.o.d"
  "CMakeFiles/mdv_rdbms.dir/value.cc.o"
  "CMakeFiles/mdv_rdbms.dir/value.cc.o.d"
  "libmdv_rdbms.a"
  "libmdv_rdbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_rdbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
