# Empty compiler generated dependencies file for mdv_rdbms.
# This may be replaced when dependencies are built.
