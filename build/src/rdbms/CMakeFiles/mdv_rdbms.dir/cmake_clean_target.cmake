file(REMOVE_RECURSE
  "libmdv_rdbms.a"
)
