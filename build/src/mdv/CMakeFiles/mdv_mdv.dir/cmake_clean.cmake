file(REMOVE_RECURSE
  "CMakeFiles/mdv_mdv.dir/document_store.cc.o"
  "CMakeFiles/mdv_mdv.dir/document_store.cc.o.d"
  "CMakeFiles/mdv_mdv.dir/lmr.cc.o"
  "CMakeFiles/mdv_mdv.dir/lmr.cc.o.d"
  "CMakeFiles/mdv_mdv.dir/metadata_provider.cc.o"
  "CMakeFiles/mdv_mdv.dir/metadata_provider.cc.o.d"
  "CMakeFiles/mdv_mdv.dir/network.cc.o"
  "CMakeFiles/mdv_mdv.dir/network.cc.o.d"
  "CMakeFiles/mdv_mdv.dir/system.cc.o"
  "CMakeFiles/mdv_mdv.dir/system.cc.o.d"
  "libmdv_mdv.a"
  "libmdv_mdv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_mdv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
