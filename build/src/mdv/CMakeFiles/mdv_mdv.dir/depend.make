# Empty dependencies file for mdv_mdv.
# This may be replaced when dependencies are built.
