file(REMOVE_RECURSE
  "libmdv_mdv.a"
)
