# Empty compiler generated dependencies file for mdv_filter.
# This may be replaced when dependencies are built.
