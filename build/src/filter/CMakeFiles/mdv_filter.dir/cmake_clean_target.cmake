file(REMOVE_RECURSE
  "libmdv_filter.a"
)
