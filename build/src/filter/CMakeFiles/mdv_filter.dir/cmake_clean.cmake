file(REMOVE_RECURSE
  "CMakeFiles/mdv_filter.dir/data_store.cc.o"
  "CMakeFiles/mdv_filter.dir/data_store.cc.o.d"
  "CMakeFiles/mdv_filter.dir/engine.cc.o"
  "CMakeFiles/mdv_filter.dir/engine.cc.o.d"
  "CMakeFiles/mdv_filter.dir/rule_store.cc.o"
  "CMakeFiles/mdv_filter.dir/rule_store.cc.o.d"
  "CMakeFiles/mdv_filter.dir/tables.cc.o"
  "CMakeFiles/mdv_filter.dir/tables.cc.o.d"
  "CMakeFiles/mdv_filter.dir/update_protocol.cc.o"
  "CMakeFiles/mdv_filter.dir/update_protocol.cc.o.d"
  "libmdv_filter.a"
  "libmdv_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
