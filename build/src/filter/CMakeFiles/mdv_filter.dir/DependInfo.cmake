
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/data_store.cc" "src/filter/CMakeFiles/mdv_filter.dir/data_store.cc.o" "gcc" "src/filter/CMakeFiles/mdv_filter.dir/data_store.cc.o.d"
  "/root/repo/src/filter/engine.cc" "src/filter/CMakeFiles/mdv_filter.dir/engine.cc.o" "gcc" "src/filter/CMakeFiles/mdv_filter.dir/engine.cc.o.d"
  "/root/repo/src/filter/rule_store.cc" "src/filter/CMakeFiles/mdv_filter.dir/rule_store.cc.o" "gcc" "src/filter/CMakeFiles/mdv_filter.dir/rule_store.cc.o.d"
  "/root/repo/src/filter/tables.cc" "src/filter/CMakeFiles/mdv_filter.dir/tables.cc.o" "gcc" "src/filter/CMakeFiles/mdv_filter.dir/tables.cc.o.d"
  "/root/repo/src/filter/update_protocol.cc" "src/filter/CMakeFiles/mdv_filter.dir/update_protocol.cc.o" "gcc" "src/filter/CMakeFiles/mdv_filter.dir/update_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdbms/CMakeFiles/mdv_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mdv_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/mdv_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
