file(REMOVE_RECURSE
  "CMakeFiles/mdv_shell.dir/mdv_shell.cpp.o"
  "CMakeFiles/mdv_shell.dir/mdv_shell.cpp.o.d"
  "mdv_shell"
  "mdv_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
