# Empty dependencies file for mdv_shell.
# This may be replaced when dependencies are built.
