# Empty dependencies file for service_discovery.
# This may be replaced when dependencies are built.
