# Empty compiler generated dependencies file for xml_federation.
# This may be replaced when dependencies are built.
