file(REMOVE_RECURSE
  "CMakeFiles/xml_federation.dir/xml_federation.cpp.o"
  "CMakeFiles/xml_federation.dir/xml_federation.cpp.o.d"
  "xml_federation"
  "xml_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
