# Empty compiler generated dependencies file for objectglobe_marketplace.
# This may be replaced when dependencies are built.
