file(REMOVE_RECURSE
  "CMakeFiles/objectglobe_marketplace.dir/objectglobe_marketplace.cpp.o"
  "CMakeFiles/objectglobe_marketplace.dir/objectglobe_marketplace.cpp.o.d"
  "objectglobe_marketplace"
  "objectglobe_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objectglobe_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
