# Empty dependencies file for cache_consistency.
# This may be replaced when dependencies are built.
