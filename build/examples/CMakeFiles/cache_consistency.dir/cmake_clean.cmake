file(REMOVE_RECURSE
  "CMakeFiles/cache_consistency.dir/cache_consistency.cpp.o"
  "CMakeFiles/cache_consistency.dir/cache_consistency.cpp.o.d"
  "cache_consistency"
  "cache_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
