file(REMOVE_RECURSE
  "CMakeFiles/rdbms_persistence_test.dir/rdbms_persistence_test.cc.o"
  "CMakeFiles/rdbms_persistence_test.dir/rdbms_persistence_test.cc.o.d"
  "rdbms_persistence_test"
  "rdbms_persistence_test.pdb"
  "rdbms_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
