# Empty compiler generated dependencies file for rdbms_persistence_test.
# This may be replaced when dependencies are built.
