# Empty compiler generated dependencies file for rdbms_sql_test.
# This may be replaced when dependencies are built.
