file(REMOVE_RECURSE
  "CMakeFiles/rdf_xml_import_test.dir/rdf_xml_import_test.cc.o"
  "CMakeFiles/rdf_xml_import_test.dir/rdf_xml_import_test.cc.o.d"
  "rdf_xml_import_test"
  "rdf_xml_import_test.pdb"
  "rdf_xml_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_xml_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
