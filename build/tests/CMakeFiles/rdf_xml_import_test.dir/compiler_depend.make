# Empty compiler generated dependencies file for rdf_xml_import_test.
# This may be replaced when dependencies are built.
