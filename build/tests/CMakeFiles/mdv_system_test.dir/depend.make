# Empty dependencies file for mdv_system_test.
# This may be replaced when dependencies are built.
