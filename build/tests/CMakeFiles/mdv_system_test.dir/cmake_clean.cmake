file(REMOVE_RECURSE
  "CMakeFiles/mdv_system_test.dir/mdv_system_test.cc.o"
  "CMakeFiles/mdv_system_test.dir/mdv_system_test.cc.o.d"
  "mdv_system_test"
  "mdv_system_test.pdb"
  "mdv_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
