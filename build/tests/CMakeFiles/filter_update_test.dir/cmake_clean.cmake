file(REMOVE_RECURSE
  "CMakeFiles/filter_update_test.dir/filter_update_test.cc.o"
  "CMakeFiles/filter_update_test.dir/filter_update_test.cc.o.d"
  "filter_update_test"
  "filter_update_test.pdb"
  "filter_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
