# Empty dependencies file for filter_update_test.
# This may be replaced when dependencies are built.
