file(REMOVE_RECURSE
  "CMakeFiles/rdbms_transaction_test.dir/rdbms_transaction_test.cc.o"
  "CMakeFiles/rdbms_transaction_test.dir/rdbms_transaction_test.cc.o.d"
  "rdbms_transaction_test"
  "rdbms_transaction_test.pdb"
  "rdbms_transaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
