# Empty dependencies file for rdbms_transaction_test.
# This may be replaced when dependencies are built.
