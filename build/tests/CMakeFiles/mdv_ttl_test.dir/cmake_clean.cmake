file(REMOVE_RECURSE
  "CMakeFiles/mdv_ttl_test.dir/mdv_ttl_test.cc.o"
  "CMakeFiles/mdv_ttl_test.dir/mdv_ttl_test.cc.o.d"
  "mdv_ttl_test"
  "mdv_ttl_test.pdb"
  "mdv_ttl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_ttl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
