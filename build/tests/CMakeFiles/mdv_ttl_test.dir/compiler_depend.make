# Empty compiler generated dependencies file for mdv_ttl_test.
# This may be replaced when dependencies are built.
