file(REMOVE_RECURSE
  "CMakeFiles/mdv_property_test.dir/mdv_property_test.cc.o"
  "CMakeFiles/mdv_property_test.dir/mdv_property_test.cc.o.d"
  "mdv_property_test"
  "mdv_property_test.pdb"
  "mdv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
