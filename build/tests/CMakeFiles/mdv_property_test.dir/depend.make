# Empty dependencies file for mdv_property_test.
# This may be replaced when dependencies are built.
