# Empty compiler generated dependencies file for mdv_sharing_test.
# This may be replaced when dependencies are built.
