file(REMOVE_RECURSE
  "CMakeFiles/mdv_sharing_test.dir/mdv_sharing_test.cc.o"
  "CMakeFiles/mdv_sharing_test.dir/mdv_sharing_test.cc.o.d"
  "mdv_sharing_test"
  "mdv_sharing_test.pdb"
  "mdv_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
