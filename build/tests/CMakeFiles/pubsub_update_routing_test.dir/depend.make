# Empty dependencies file for pubsub_update_routing_test.
# This may be replaced when dependencies are built.
