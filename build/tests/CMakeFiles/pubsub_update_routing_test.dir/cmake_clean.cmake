file(REMOVE_RECURSE
  "CMakeFiles/pubsub_update_routing_test.dir/pubsub_update_routing_test.cc.o"
  "CMakeFiles/pubsub_update_routing_test.dir/pubsub_update_routing_test.cc.o.d"
  "pubsub_update_routing_test"
  "pubsub_update_routing_test.pdb"
  "pubsub_update_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_update_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
