file(REMOVE_RECURSE
  "CMakeFiles/rules_lexer_test.dir/rules_lexer_test.cc.o"
  "CMakeFiles/rules_lexer_test.dir/rules_lexer_test.cc.o.d"
  "rules_lexer_test"
  "rules_lexer_test.pdb"
  "rules_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
