# Empty dependencies file for rules_lexer_test.
# This may be replaced when dependencies are built.
