file(REMOVE_RECURSE
  "CMakeFiles/rules_evaluator_test.dir/rules_evaluator_test.cc.o"
  "CMakeFiles/rules_evaluator_test.dir/rules_evaluator_test.cc.o.d"
  "rules_evaluator_test"
  "rules_evaluator_test.pdb"
  "rules_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
