# Empty dependencies file for rules_evaluator_test.
# This may be replaced when dependencies are built.
