# Empty dependencies file for rdf_parser_test.
# This may be replaced when dependencies are built.
