file(REMOVE_RECURSE
  "CMakeFiles/rdf_parser_test.dir/rdf_parser_test.cc.o"
  "CMakeFiles/rdf_parser_test.dir/rdf_parser_test.cc.o.d"
  "rdf_parser_test"
  "rdf_parser_test.pdb"
  "rdf_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
