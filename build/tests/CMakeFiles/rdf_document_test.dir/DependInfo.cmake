
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rdf_document_test.cc" "tests/CMakeFiles/rdf_document_test.dir/rdf_document_test.cc.o" "gcc" "tests/CMakeFiles/rdf_document_test.dir/rdf_document_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdv/CMakeFiles/mdv_mdv.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/mdv_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/mdv_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/mdv_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/mdv_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/rdbms/CMakeFiles/mdv_rdbms.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_support/CMakeFiles/mdv_bench_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
