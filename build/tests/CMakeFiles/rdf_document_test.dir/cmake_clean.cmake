file(REMOVE_RECURSE
  "CMakeFiles/rdf_document_test.dir/rdf_document_test.cc.o"
  "CMakeFiles/rdf_document_test.dir/rdf_document_test.cc.o.d"
  "rdf_document_test"
  "rdf_document_test.pdb"
  "rdf_document_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
