# Empty dependencies file for rdf_document_test.
# This may be replaced when dependencies are built.
