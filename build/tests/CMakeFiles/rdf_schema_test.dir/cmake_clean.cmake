file(REMOVE_RECURSE
  "CMakeFiles/rdf_schema_test.dir/rdf_schema_test.cc.o"
  "CMakeFiles/rdf_schema_test.dir/rdf_schema_test.cc.o.d"
  "rdf_schema_test"
  "rdf_schema_test.pdb"
  "rdf_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
