# Empty dependencies file for rdf_schema_test.
# This may be replaced when dependencies are built.
