# Empty compiler generated dependencies file for filter_stats_test.
# This may be replaced when dependencies are built.
