file(REMOVE_RECURSE
  "CMakeFiles/filter_stats_test.dir/filter_stats_test.cc.o"
  "CMakeFiles/filter_stats_test.dir/filter_stats_test.cc.o.d"
  "filter_stats_test"
  "filter_stats_test.pdb"
  "filter_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
