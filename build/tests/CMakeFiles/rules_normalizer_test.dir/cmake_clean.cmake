file(REMOVE_RECURSE
  "CMakeFiles/rules_normalizer_test.dir/rules_normalizer_test.cc.o"
  "CMakeFiles/rules_normalizer_test.dir/rules_normalizer_test.cc.o.d"
  "rules_normalizer_test"
  "rules_normalizer_test.pdb"
  "rules_normalizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
