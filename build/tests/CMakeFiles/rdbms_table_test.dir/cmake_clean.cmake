file(REMOVE_RECURSE
  "CMakeFiles/rdbms_table_test.dir/rdbms_table_test.cc.o"
  "CMakeFiles/rdbms_table_test.dir/rdbms_table_test.cc.o.d"
  "rdbms_table_test"
  "rdbms_table_test.pdb"
  "rdbms_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
