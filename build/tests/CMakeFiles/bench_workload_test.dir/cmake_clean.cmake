file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_test.dir/bench_workload_test.cc.o"
  "CMakeFiles/bench_workload_test.dir/bench_workload_test.cc.o.d"
  "bench_workload_test"
  "bench_workload_test.pdb"
  "bench_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
