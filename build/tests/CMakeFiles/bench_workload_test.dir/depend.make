# Empty dependencies file for bench_workload_test.
# This may be replaced when dependencies are built.
