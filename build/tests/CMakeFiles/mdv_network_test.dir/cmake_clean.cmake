file(REMOVE_RECURSE
  "CMakeFiles/mdv_network_test.dir/mdv_network_test.cc.o"
  "CMakeFiles/mdv_network_test.dir/mdv_network_test.cc.o.d"
  "mdv_network_test"
  "mdv_network_test.pdb"
  "mdv_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
