# Empty compiler generated dependencies file for mdv_network_test.
# This may be replaced when dependencies are built.
