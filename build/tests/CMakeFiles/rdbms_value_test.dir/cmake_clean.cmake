file(REMOVE_RECURSE
  "CMakeFiles/rdbms_value_test.dir/rdbms_value_test.cc.o"
  "CMakeFiles/rdbms_value_test.dir/rdbms_value_test.cc.o.d"
  "rdbms_value_test"
  "rdbms_value_test.pdb"
  "rdbms_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
