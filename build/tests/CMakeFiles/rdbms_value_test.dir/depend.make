# Empty dependencies file for rdbms_value_test.
# This may be replaced when dependencies are built.
