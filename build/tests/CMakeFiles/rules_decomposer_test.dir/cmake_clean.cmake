file(REMOVE_RECURSE
  "CMakeFiles/rules_decomposer_test.dir/rules_decomposer_test.cc.o"
  "CMakeFiles/rules_decomposer_test.dir/rules_decomposer_test.cc.o.d"
  "rules_decomposer_test"
  "rules_decomposer_test.pdb"
  "rules_decomposer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_decomposer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
