# Empty compiler generated dependencies file for mdv_snapshot_test.
# This may be replaced when dependencies are built.
