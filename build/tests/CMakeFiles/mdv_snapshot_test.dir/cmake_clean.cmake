file(REMOVE_RECURSE
  "CMakeFiles/mdv_snapshot_test.dir/mdv_snapshot_test.cc.o"
  "CMakeFiles/mdv_snapshot_test.dir/mdv_snapshot_test.cc.o.d"
  "mdv_snapshot_test"
  "mdv_snapshot_test.pdb"
  "mdv_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdv_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
