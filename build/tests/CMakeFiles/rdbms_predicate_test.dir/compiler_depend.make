# Empty compiler generated dependencies file for rdbms_predicate_test.
# This may be replaced when dependencies are built.
