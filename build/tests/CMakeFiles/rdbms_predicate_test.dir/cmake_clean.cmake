file(REMOVE_RECURSE
  "CMakeFiles/rdbms_predicate_test.dir/rdbms_predicate_test.cc.o"
  "CMakeFiles/rdbms_predicate_test.dir/rdbms_predicate_test.cc.o.d"
  "rdbms_predicate_test"
  "rdbms_predicate_test.pdb"
  "rdbms_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
