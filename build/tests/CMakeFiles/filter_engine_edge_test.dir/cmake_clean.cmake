file(REMOVE_RECURSE
  "CMakeFiles/filter_engine_edge_test.dir/filter_engine_edge_test.cc.o"
  "CMakeFiles/filter_engine_edge_test.dir/filter_engine_edge_test.cc.o.d"
  "filter_engine_edge_test"
  "filter_engine_edge_test.pdb"
  "filter_engine_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_engine_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
