# Empty compiler generated dependencies file for rules_analyzer_test.
# This may be replaced when dependencies are built.
