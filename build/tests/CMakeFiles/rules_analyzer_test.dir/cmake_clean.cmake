file(REMOVE_RECURSE
  "CMakeFiles/rules_analyzer_test.dir/rules_analyzer_test.cc.o"
  "CMakeFiles/rules_analyzer_test.dir/rules_analyzer_test.cc.o.d"
  "rules_analyzer_test"
  "rules_analyzer_test.pdb"
  "rules_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
