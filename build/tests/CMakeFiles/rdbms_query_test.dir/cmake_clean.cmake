file(REMOVE_RECURSE
  "CMakeFiles/rdbms_query_test.dir/rdbms_query_test.cc.o"
  "CMakeFiles/rdbms_query_test.dir/rdbms_query_test.cc.o.d"
  "rdbms_query_test"
  "rdbms_query_test.pdb"
  "rdbms_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
