# Empty compiler generated dependencies file for rdbms_query_test.
# This may be replaced when dependencies are built.
